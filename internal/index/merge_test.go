package index

import (
	"math"
	"testing"

	"websearchbench/internal/corpus"
	"websearchbench/internal/textproc"
)

// segmentsEqual asserts two segments are behaviourally identical:
// same dictionary, postings, doc metadata and max scores.
func segmentsEqual(t *testing.T, got, want *Segment) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", got.NumDocs(), want.NumDocs())
	}
	if got.NumTerms() != want.NumTerms() {
		t.Fatalf("NumTerms = %d, want %d", got.NumTerms(), want.NumTerms())
	}
	if got.AvgDocLen() != want.AvgDocLen() {
		t.Fatalf("AvgDocLen = %v, want %v", got.AvgDocLen(), want.AvgDocLen())
	}
	for i := 0; i < want.NumDocs(); i++ {
		if got.Doc(int32(i)) != want.Doc(int32(i)) {
			t.Fatalf("doc %d stored fields differ", i)
		}
		if got.DocLen(int32(i)) != want.DocLen(int32(i)) {
			t.Fatalf("doc %d length differs", i)
		}
	}
	for _, term := range want.Terms() {
		wi, _ := want.Term(term)
		gi, ok := got.Term(term)
		if !ok {
			t.Fatalf("term %q missing after merge", term)
		}
		if gi.DocFreq != wi.DocFreq || gi.CollFreq != wi.CollFreq {
			t.Fatalf("term %q stats differ: %+v vs %+v", term, gi, wi)
		}
		if math.Abs(float64(gi.MaxScore-wi.MaxScore)) > 1e-6 {
			t.Fatalf("term %q MaxScore %v vs %v", term, gi.MaxScore, wi.MaxScore)
		}
		a, _ := got.Postings(term)
		b, _ := want.Postings(term)
		for b.Next() {
			if !a.Next() {
				t.Fatalf("term %q postings truncated", term)
			}
			if a.Doc() != b.Doc() || a.Freq() != b.Freq() {
				t.Fatalf("term %q posting (%d,%d) vs (%d,%d)",
					term, a.Doc(), a.Freq(), b.Doc(), b.Freq())
			}
		}
		if a.Next() {
			t.Fatalf("term %q extra postings", term)
		}
	}
}

func corpusDocs(t *testing.T, n int) []corpus.Document {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = n
	cfg.VocabSize = 800
	cfg.MeanBodyTerms = 40
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate()
}

// The central merge invariant: flushing into many segments and merging
// yields exactly the segment a single builder would have produced.
func TestMergeEqualsSingleBuild(t *testing.T) {
	docs := corpusDocs(t, 150)
	for _, opts := range [][]BuilderOption{
		nil,
		{WithPositions()},
		{WithCompression(CompressionRaw)},
	} {
		single := NewBuilder(opts...)
		w := NewWriter(40, opts...) // uneven final flush: 150 = 3*40 + 30
		for _, d := range docs {
			single.AddCorpusDoc(d)
			w.AddDocument(d.Title, d.Body, d.URL, d.Quality)
		}
		want := single.Finalize()
		merged, err := w.Compact()
		if err != nil {
			t.Fatal(err)
		}
		segmentsEqual(t, merged, want)
	}
}

func TestMergePositionsPreserved(t *testing.T) {
	a := NewBuilder(WithPositions(), WithAnalyzer(&textproc.Analyzer{DisableStemming: true}))
	a.AddDocument("t", "alpha beta alpha", "u0", 1)
	segA := a.Finalize()
	b := NewBuilder(WithPositions(), WithAnalyzer(&textproc.Analyzer{DisableStemming: true}))
	b.AddDocument("t", "beta alpha", "u1", 1)
	segB := b.Finalize()
	merged, err := MergeSegments([]*Segment{segA, segB})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.HasPositions() {
		t.Fatal("merge dropped positions")
	}
	it, ok := merged.PositionsOf("alpha")
	if !ok {
		t.Fatal("alpha missing")
	}
	// Doc 0: title "t" at 0, alpha at 1 and 3. Doc 1 (offset): alpha at 2.
	if !it.Next() || it.Doc() != 0 {
		t.Fatalf("doc = %d", it.Doc())
	}
	got := it.Positions()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("doc0 alpha positions = %v, want [1 3]", got)
	}
	if !it.Next() || it.Doc() != 1 {
		t.Fatalf("second doc = %d", it.Doc())
	}
	got = it.Positions()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("doc1 alpha positions = %v, want [2]", got)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := MergeSegments(nil); err == nil {
		t.Error("empty merge accepted")
	}
	// Mixed compressions are legal since v04 (merge re-encodes through
	// iterators); the output takes the first segment's encoding.
	varint := NewBuilder(WithCompression(CompressionVarint))
	varint.AddDocument("t", "x", "u", 1)
	raw := NewBuilder(WithCompression(CompressionRaw))
	raw.AddDocument("t", "x", "u", 1)
	if m, err := MergeSegments([]*Segment{varint.Finalize(), raw.Finalize()}); err != nil {
		t.Errorf("mixed compression merge rejected: %v", err)
	} else if m.Compression() != CompressionVarint {
		t.Errorf("mixed merge produced %v, want first segment's varint", m.Compression())
	}
	pos := NewBuilder(WithPositions())
	pos.AddDocument("t", "x", "u", 1)
	plain := NewBuilder()
	plain.AddDocument("t", "x", "u", 1)
	if _, err := MergeSegments([]*Segment{pos.Finalize(), plain.Finalize()}); err == nil {
		t.Error("mixed positional merge accepted")
	}
	bm := NewBuilder(WithBM25(BM25Params{K1: 2, B: 0.5}))
	bm.AddDocument("t", "x", "u", 1)
	std := NewBuilder()
	std.AddDocument("t", "x", "u", 1)
	if _, err := MergeSegments([]*Segment{bm.Finalize(), std.Finalize()}); err == nil {
		t.Error("mixed BM25 merge accepted")
	}
}

func TestMergeSingleSegmentIdentity(t *testing.T) {
	b := NewBuilder()
	b.AddDocument("t", "hello world", "u", 1)
	seg := b.Finalize()
	got, err := MergeSegments([]*Segment{seg})
	if err != nil {
		t.Fatal(err)
	}
	if got != seg {
		t.Error("single-segment merge should return the segment itself")
	}
}

func TestWriterLifecycle(t *testing.T) {
	w := NewWriter(10)
	if w.NumSegments() != 0 || w.NumDocs() != 0 {
		t.Fatal("fresh writer not empty")
	}
	docs := corpusDocs(t, 25)
	for i, d := range docs {
		if id := w.AddDocument(d.Title, d.Body, d.URL, d.Quality); id != int32(i) {
			t.Fatalf("doc %d got id %d", i, id)
		}
	}
	// 25 docs at flushEvery=10: two full flushes, 5 buffered.
	if w.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", w.NumSegments())
	}
	segs := w.Segments() // flushes the remainder
	if len(segs) != 3 {
		t.Fatalf("Segments = %d, want 3", len(segs))
	}
	if segs[0].NumDocs() != 10 || segs[2].NumDocs() != 5 {
		t.Errorf("segment sizes = %d,%d,%d", segs[0].NumDocs(), segs[1].NumDocs(), segs[2].NumDocs())
	}
	// Double flush is a no-op.
	w.Flush()
	if w.NumSegments() != 3 {
		t.Errorf("extra flush created a segment")
	}
	merged, err := w.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumDocs() != 25 {
		t.Errorf("merged docs = %d", merged.NumDocs())
	}
	if w.NumSegments() != 1 {
		t.Errorf("post-compact segments = %d", w.NumSegments())
	}
}

func TestWriterEmptyCompact(t *testing.T) {
	if _, err := NewWriter(5).Compact(); err == nil {
		t.Error("empty writer Compact should fail")
	}
}

func TestWriterFlushEveryClamped(t *testing.T) {
	w := NewWriter(0)
	w.AddDocument("t", "a b", "u", 1)
	if w.NumSegments() != 1 {
		t.Error("flushEvery=0 should clamp to 1 (flush per doc)")
	}
}
