package index

import (
	"math"
	"testing"

	"websearchbench/internal/corpus"
	"websearchbench/internal/textproc"
)

// segmentsEqual asserts two segments are behaviourally identical:
// same dictionary, postings, doc metadata and max scores.
func segmentsEqual(t *testing.T, got, want *Segment) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", got.NumDocs(), want.NumDocs())
	}
	if got.NumTerms() != want.NumTerms() {
		t.Fatalf("NumTerms = %d, want %d", got.NumTerms(), want.NumTerms())
	}
	if got.AvgDocLen() != want.AvgDocLen() {
		t.Fatalf("AvgDocLen = %v, want %v", got.AvgDocLen(), want.AvgDocLen())
	}
	for i := 0; i < want.NumDocs(); i++ {
		if got.Doc(int32(i)) != want.Doc(int32(i)) {
			t.Fatalf("doc %d stored fields differ", i)
		}
		if got.DocLen(int32(i)) != want.DocLen(int32(i)) {
			t.Fatalf("doc %d length differs", i)
		}
	}
	for _, term := range want.Terms() {
		wi, _ := want.Term(term)
		gi, ok := got.Term(term)
		if !ok {
			t.Fatalf("term %q missing after merge", term)
		}
		if gi.DocFreq != wi.DocFreq || gi.CollFreq != wi.CollFreq {
			t.Fatalf("term %q stats differ: %+v vs %+v", term, gi, wi)
		}
		if math.Abs(float64(gi.MaxScore-wi.MaxScore)) > 1e-6 {
			t.Fatalf("term %q MaxScore %v vs %v", term, gi.MaxScore, wi.MaxScore)
		}
		a, _ := got.Postings(term)
		b, _ := want.Postings(term)
		for b.Next() {
			if !a.Next() {
				t.Fatalf("term %q postings truncated", term)
			}
			if a.Doc() != b.Doc() || a.Freq() != b.Freq() {
				t.Fatalf("term %q posting (%d,%d) vs (%d,%d)",
					term, a.Doc(), a.Freq(), b.Doc(), b.Freq())
			}
		}
		if a.Next() {
			t.Fatalf("term %q extra postings", term)
		}
	}
}

func corpusDocs(t *testing.T, n int) []corpus.Document {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = n
	cfg.VocabSize = 800
	cfg.MeanBodyTerms = 40
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate()
}

// The central merge invariant: flushing into many segments and merging
// yields exactly the segment a single builder would have produced.
func TestMergeEqualsSingleBuild(t *testing.T) {
	docs := corpusDocs(t, 150)
	for _, opts := range [][]BuilderOption{
		nil,
		{WithPositions()},
		{WithCompression(CompressionRaw)},
	} {
		single := NewBuilder(opts...)
		w := NewWriter(40, opts...) // uneven final flush: 150 = 3*40 + 30
		for _, d := range docs {
			single.AddCorpusDoc(d)
			w.AddDocument(d.Title, d.Body, d.URL, d.Quality)
		}
		want := single.Finalize()
		merged, err := w.Compact()
		if err != nil {
			t.Fatal(err)
		}
		segmentsEqual(t, merged, want)
	}
}

func TestMergePositionsPreserved(t *testing.T) {
	a := NewBuilder(WithPositions(), WithAnalyzer(&textproc.Analyzer{DisableStemming: true}))
	a.AddDocument("t", "alpha beta alpha", "u0", 1)
	segA := a.Finalize()
	b := NewBuilder(WithPositions(), WithAnalyzer(&textproc.Analyzer{DisableStemming: true}))
	b.AddDocument("t", "beta alpha", "u1", 1)
	segB := b.Finalize()
	merged, err := MergeSegments([]*Segment{segA, segB})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.HasPositions() {
		t.Fatal("merge dropped positions")
	}
	it, ok := merged.PositionsOf("alpha")
	if !ok {
		t.Fatal("alpha missing")
	}
	// Doc 0: title "t" at 0, alpha at 1 and 3. Doc 1 (offset): alpha at 2.
	if !it.Next() || it.Doc() != 0 {
		t.Fatalf("doc = %d", it.Doc())
	}
	got := it.Positions()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("doc0 alpha positions = %v, want [1 3]", got)
	}
	if !it.Next() || it.Doc() != 1 {
		t.Fatalf("second doc = %d", it.Doc())
	}
	got = it.Positions()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("doc1 alpha positions = %v, want [2]", got)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := MergeSegments(nil); err == nil {
		t.Error("empty merge accepted")
	}
	// Mixed compressions are legal since v04 (merge re-encodes through
	// iterators); the output takes the first segment's encoding.
	varint := NewBuilder(WithCompression(CompressionVarint))
	varint.AddDocument("t", "x", "u", 1)
	raw := NewBuilder(WithCompression(CompressionRaw))
	raw.AddDocument("t", "x", "u", 1)
	if m, err := MergeSegments([]*Segment{varint.Finalize(), raw.Finalize()}); err != nil {
		t.Errorf("mixed compression merge rejected: %v", err)
	} else if m.Compression() != CompressionVarint {
		t.Errorf("mixed merge produced %v, want first segment's varint", m.Compression())
	}
	pos := NewBuilder(WithPositions())
	pos.AddDocument("t", "x", "u", 1)
	plain := NewBuilder()
	plain.AddDocument("t", "x", "u", 1)
	if _, err := MergeSegments([]*Segment{pos.Finalize(), plain.Finalize()}); err == nil {
		t.Error("mixed positional merge accepted")
	}
	bm := NewBuilder(WithBM25(BM25Params{K1: 2, B: 0.5}))
	bm.AddDocument("t", "x", "u", 1)
	std := NewBuilder()
	std.AddDocument("t", "x", "u", 1)
	if _, err := MergeSegments([]*Segment{bm.Finalize(), std.Finalize()}); err == nil {
		t.Error("mixed BM25 merge accepted")
	}
}

func TestMergeSingleSegmentIdentity(t *testing.T) {
	b := NewBuilder()
	b.AddDocument("t", "hello world", "u", 1)
	seg := b.Finalize()
	got, err := MergeSegments([]*Segment{seg})
	if err != nil {
		t.Fatal(err)
	}
	if got != seg {
		t.Error("single-segment merge should return the segment itself")
	}
}

// Filtered merging must be equivalent to never having indexed the
// dropped documents: same dictionary, postings, stats and scores as a
// from-scratch build over the survivors.
func TestMergeFilteredEqualsRebuild(t *testing.T) {
	docs := corpusDocs(t, 120)
	// Drop a third of the docs, spread across both input segments.
	drop := func(global int) bool { return global%3 == 1 }

	a, b := NewBuilder(), NewBuilder()
	for i, d := range docs {
		if i < 70 {
			a.AddCorpusDoc(d)
		} else {
			b.AddCorpusDoc(d)
		}
	}
	segA, segB := a.Finalize(), b.Finalize()
	dropFns := []func(int32) bool{
		func(d int32) bool { return drop(int(d)) },
		func(d int32) bool { return drop(int(d) + 70) },
	}
	merged, remap, err := MergeSegmentsFiltered([]*Segment{segA, segB}, dropFns)
	if err != nil {
		t.Fatal(err)
	}

	want := NewBuilder()
	for i, d := range docs {
		if !drop(i) {
			want.AddCorpusDoc(d)
		}
	}
	segmentsEqual(t, merged, want.Finalize())

	// Remap: dropped docs map to -1, survivors renumber densely in order.
	next := int32(0)
	for si, m := range remap {
		base := 0
		if si == 1 {
			base = 70
		}
		for d, nd := range m {
			if drop(base + d) {
				if nd != -1 {
					t.Fatalf("seg %d doc %d: dropped doc remapped to %d", si, d, nd)
				}
				continue
			}
			if nd != next {
				t.Fatalf("seg %d doc %d: remap %d, want %d", si, d, nd, next)
			}
			next++
		}
	}
}

// A single segment with a filter is rewritten (dead-doc reclamation),
// and terms whose postings all died vanish from the dictionary.
func TestMergeFilteredSingleSegmentReclaim(t *testing.T) {
	an := &textproc.Analyzer{DisableStemming: true}
	b := NewBuilder(WithAnalyzer(an))
	b.AddDocument("t0", "alpha shared", "u0", 1)
	b.AddDocument("t1", "unique shared", "u1", 1)
	b.AddDocument("t2", "alpha shared", "u2", 1)
	seg := b.Finalize()

	merged, remap, err := MergeSegmentsFiltered([]*Segment{seg},
		[]func(int32) bool{func(d int32) bool { return d == 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", merged.NumDocs())
	}
	if got := remap[0]; got[0] != 0 || got[1] != -1 || got[2] != 1 {
		t.Fatalf("remap = %v, want [0 -1 1]", got)
	}
	if _, ok := merged.Term("unique"); ok {
		t.Error("term held only by the dropped doc survived reclamation")
	}
	ti, ok := merged.Term("shared")
	if !ok || ti.DocFreq != 2 {
		t.Fatalf("shared: ok=%v df=%d, want df=2", ok, ti.DocFreq)
	}
	if merged.Doc(1).Title != "t2" {
		t.Errorf("survivor doc 1 = %q, want t2", merged.Doc(1).Title)
	}
}

// Filtering a positional merge drops the dead docs' positions with them.
func TestMergeFilteredPositional(t *testing.T) {
	an := &textproc.Analyzer{DisableStemming: true}
	a := NewBuilder(WithPositions(), WithAnalyzer(an))
	a.AddDocument("t", "alpha beta", "u0", 1)
	a.AddDocument("t", "alpha gone", "u1", 1)
	segA := a.Finalize()
	bld := NewBuilder(WithPositions(), WithAnalyzer(an))
	bld.AddDocument("t", "beta alpha", "u2", 1)
	segB := bld.Finalize()

	merged, _, err := MergeSegmentsFiltered([]*Segment{segA, segB},
		[]func(int32) bool{func(d int32) bool { return d == 1 }, nil})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", merged.NumDocs())
	}
	if _, ok := merged.Term("gone"); ok {
		t.Error("dropped doc's term survived")
	}
	it, ok := merged.PositionsOf("alpha")
	if !ok {
		t.Fatal("alpha missing")
	}
	// Doc 0: title "t" at 0, alpha at 1. Doc 1 (was segB doc 0): alpha at 2.
	if !it.Next() || it.Doc() != 0 || it.Positions()[0] != 1 {
		t.Fatalf("doc0 alpha at %v", it.Positions())
	}
	if !it.Next() || it.Doc() != 1 || it.Positions()[0] != 2 {
		t.Fatalf("doc1 alpha at %v", it.Positions())
	}
	if it.Next() {
		t.Error("extra alpha posting")
	}
}

func TestWriterLifecycle(t *testing.T) {
	w := NewWriter(10)
	if w.NumSegments() != 0 || w.NumDocs() != 0 {
		t.Fatal("fresh writer not empty")
	}
	docs := corpusDocs(t, 25)
	for i, d := range docs {
		if id := w.AddDocument(d.Title, d.Body, d.URL, d.Quality); id != int32(i) {
			t.Fatalf("doc %d got id %d", i, id)
		}
	}
	// 25 docs at flushEvery=10: two full flushes, 5 buffered.
	if w.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", w.NumSegments())
	}
	segs := w.Segments() // flushes the remainder
	if len(segs) != 3 {
		t.Fatalf("Segments = %d, want 3", len(segs))
	}
	if segs[0].NumDocs() != 10 || segs[2].NumDocs() != 5 {
		t.Errorf("segment sizes = %d,%d,%d", segs[0].NumDocs(), segs[1].NumDocs(), segs[2].NumDocs())
	}
	// Double flush is a no-op.
	w.Flush()
	if w.NumSegments() != 3 {
		t.Errorf("extra flush created a segment")
	}
	merged, err := w.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumDocs() != 25 {
		t.Errorf("merged docs = %d", merged.NumDocs())
	}
	if w.NumSegments() != 1 {
		t.Errorf("post-compact segments = %d", w.NumSegments())
	}
}

func TestWriterEmptyCompact(t *testing.T) {
	if _, err := NewWriter(5).Compact(); err == nil {
		t.Error("empty writer Compact should fail")
	}
}

func TestWriterFlushEveryClamped(t *testing.T) {
	w := NewWriter(0)
	w.AddDocument("t", "a b", "u", 1)
	if w.NumSegments() != 1 {
		t.Error("flushEvery=0 should clamp to 1 (flush per doc)")
	}
}
