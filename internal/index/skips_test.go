package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"websearchbench/internal/textproc"
)

// buildLongList builds a segment with one very frequent term so its
// posting list qualifies for a skip table.
func buildLongList(t testing.TB, docs int, opts ...BuilderOption) *Segment {
	t.Helper()
	opts = append([]BuilderOption{
		WithAnalyzer(&textproc.Analyzer{DisableStemming: true}),
	}, opts...)
	b := NewBuilder(opts...)
	for i := 0; i < docs; i++ {
		body := "common"
		if i%3 == 0 {
			body += " sparse"
		}
		b.AddDocument("t", body, "u", 1)
	}
	return b.Finalize()
}

func TestSkipTableBuilt(t *testing.T) {
	s := buildLongList(t, 1000)
	ti, _ := s.Term("common")
	if ti.DocFreq != 1000 {
		t.Fatalf("df = %d", ti.DocFreq)
	}
	if s.skips == nil || len(s.skips[ti.ID]) == 0 {
		t.Fatal("no skip table for a 1000-posting list")
	}
	// Short lists get none.
	sp, _ := s.Term("sparse")
	if len(s.skips[sp.ID]) == 0 {
		t.Log("sparse list has a table too (df >= threshold), fine")
	}
	// Entries are spaced skipInterval apart and strictly increasing.
	table := s.skips[ti.ID]
	for i, e := range table {
		if e.used != int32((i+1)*skipInterval) {
			t.Errorf("entry %d used = %d", i, e.used)
		}
		if i > 0 && e.doc <= table[i-1].doc {
			t.Errorf("entry %d doc not increasing", i)
		}
	}
}

func TestSkipToWithTableMatchesLinear(t *testing.T) {
	s := buildLongList(t, 2000)
	targets := []int32{0, 1, 63, 64, 65, 500, 1234, 1999, 2000}
	for _, target := range targets {
		fast, _ := s.Postings("common")
		slow, _ := s.PostingsWithoutSkips("common")
		fok := fast.SkipTo(target)
		sok := slow.SkipTo(target)
		if fok != sok {
			t.Fatalf("SkipTo(%d): ok %v vs %v", target, fok, sok)
		}
		if fok && (fast.Doc() != slow.Doc() || fast.Freq() != slow.Freq()) {
			t.Fatalf("SkipTo(%d): (%d,%d) vs (%d,%d)",
				target, fast.Doc(), fast.Freq(), slow.Doc(), slow.Freq())
		}
	}
}

// Property: any monotone sequence of SkipTo/Next calls sees identical
// streams with and without the skip table, for both compressions and
// positional lists.
func TestSkipEquivalenceProperty(t *testing.T) {
	segs := map[string]*Segment{
		"packed":     buildLongList(t, 900),
		"varint":     buildLongList(t, 900, WithCompression(CompressionVarint)),
		"raw":        buildLongList(t, 900, WithCompression(CompressionRaw)),
		"positional": buildLongList(t, 900, WithPositions()),
	}
	f := func(seed int64, name uint8) bool {
		keys := []string{"packed", "varint", "raw", "positional"}
		s := segs[keys[int(name)%len(keys)]]
		rng := rand.New(rand.NewSource(seed))
		fast, _ := s.Postings("common")
		slow, _ := s.PostingsWithoutSkips("common")
		target := int32(0)
		for op := 0; op < 40; op++ {
			if rng.Intn(2) == 0 {
				target += int32(rng.Intn(60))
				fok, sok := fast.SkipTo(target), slow.SkipTo(target)
				if fok != sok {
					return false
				}
				if !fok {
					return true
				}
			} else {
				fok, sok := fast.Next(), slow.Next()
				if fok != sok {
					return false
				}
				if !fok {
					return true
				}
			}
			if fast.Doc() != slow.Doc() || fast.Freq() != slow.Freq() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRawSeekDirect(t *testing.T) {
	s := buildLongList(t, 500, WithCompression(CompressionRaw))
	it, _ := s.Postings("common")
	if !it.SkipTo(321) || it.Doc() != 321 {
		t.Fatalf("raw SkipTo(321) -> %d", it.Doc())
	}
	// Backwards target after forward movement stays put.
	if !it.SkipTo(100) || it.Doc() != 321 {
		t.Fatalf("raw backwards SkipTo moved to %d", it.Doc())
	}
	if it.SkipTo(500) {
		t.Fatal("SkipTo past the end returned true")
	}
}

func TestSkipsSurviveSerialization(t *testing.T) {
	s := buildLongList(t, 1000)
	got := roundTrip(t, s)
	ti, _ := got.Term("common")
	if got.skips == nil || len(got.skips[ti.ID]) == 0 {
		t.Fatal("skip tables not rebuilt after deserialization")
	}
	fast, _ := got.Postings("common")
	if !fast.SkipTo(777) || fast.Doc() != 777 {
		t.Fatalf("SkipTo after round trip -> %d", fast.Doc())
	}
}

func BenchmarkSkipToWithTable(b *testing.B) {
	s := buildLongList(b, 20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it, _ := s.Postings("common")
		for target := int32(0); target < 20000; target += 500 {
			it.SkipTo(target)
		}
	}
}

func BenchmarkSkipToLinear(b *testing.B) {
	s := buildLongList(b, 20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it, _ := s.PostingsWithoutSkips("common")
		for target := int32(0); target < 20000; target += 500 {
			it.SkipTo(target)
		}
	}
}
