package index

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"websearchbench/internal/corpus"
)

func roundTrip(t *testing.T, s *Segment) *Segment {
	t.Helper()
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSegment(&buf)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	return got
}

func segmentsEquivalent(t *testing.T, a, b *Segment) {
	t.Helper()
	if a.NumDocs() != b.NumDocs() || a.NumTerms() != b.NumTerms() {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			a.NumDocs(), a.NumTerms(), b.NumDocs(), b.NumTerms())
	}
	if a.Compression() != b.Compression() {
		t.Fatal("compression differs")
	}
	if a.BM25() != b.BM25() {
		t.Fatal("BM25 params differ")
	}
	if a.AvgDocLen() != b.AvgDocLen() {
		t.Fatal("avg doc len differs")
	}
	if !reflect.DeepEqual(a.Terms(), b.Terms()) {
		t.Fatal("term lists differ")
	}
	for _, term := range a.Terms() {
		ta, _ := a.Term(term)
		tb, _ := b.Term(term)
		if ta != tb {
			t.Fatalf("term %q info differs: %+v vs %+v", term, ta, tb)
		}
		ia, _ := a.Postings(term)
		ib, _ := b.Postings(term)
		for ia.Next() {
			if !ib.Next() {
				t.Fatalf("term %q: postings truncated after round trip", term)
			}
			if ia.Doc() != ib.Doc() || ia.Freq() != ib.Freq() {
				t.Fatalf("term %q: posting differs", term)
			}
		}
		if ib.Next() {
			t.Fatalf("term %q: extra postings after round trip", term)
		}
	}
	for i := 0; i < a.NumDocs(); i++ {
		if a.Doc(int32(i)) != b.Doc(int32(i)) {
			t.Fatalf("doc %d stored fields differ", i)
		}
		if a.DocLen(int32(i)) != b.DocLen(int32(i)) {
			t.Fatalf("doc %d length differs", i)
		}
	}
}

func TestSerializeRoundTripTiny(t *testing.T) {
	s := buildTiny(t)
	segmentsEquivalent(t, s, roundTrip(t, s))
}

func TestSerializeRoundTripRaw(t *testing.T) {
	s := buildTiny(t, WithCompression(CompressionRaw))
	segmentsEquivalent(t, s, roundTrip(t, s))
}

func TestSerializeRoundTripCorpus(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 150
	cfg.VocabSize = 800
	cfg.MeanBodyTerms = 40
	s, err := BuildFromCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	segmentsEquivalent(t, s, roundTrip(t, s))
}

func TestSerializeEmptySegment(t *testing.T) {
	s := NewBuilder().Finalize()
	got := roundTrip(t, s)
	if got.NumDocs() != 0 || got.NumTerms() != 0 {
		t.Errorf("empty segment round trip: %d docs %d terms", got.NumDocs(), got.NumTerms())
	}
}

func TestReadSegmentBadMagic(t *testing.T) {
	if _, err := ReadSegment(bytes.NewReader([]byte("NOTANIDX--------"))); err != ErrBadFormat {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestReadSegmentTruncated(t *testing.T) {
	s := buildTiny(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, frac := range []int{0, 1, 4, 8, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := ReadSegment(bytes.NewReader(full[:frac])); err == nil {
			t.Errorf("truncation at %d bytes: expected error", frac)
		}
	}
}

func TestReadSegmentShortReader(t *testing.T) {
	// A reader that errors mid-stream propagates the error.
	s := buildTiny(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := io.LimitReader(&buf, 20)
	if _, err := ReadSegment(r); err == nil {
		t.Error("expected error from short reader")
	}
}

func TestReadSegmentUnknownCompression(t *testing.T) {
	s := buildTiny(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 7 // compression byte right after magic
	if _, err := ReadSegment(bytes.NewReader(data)); err == nil {
		t.Error("expected error for unknown compression")
	}
}

func TestReadSegmentHugeCounts(t *testing.T) {
	// A tiny file claiming 2^28 documents must fail on its missing
	// bytes without first allocating count-sized slices.
	s := buildTiny(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// numDocs is the u32 at offset 8 (magic) + 1 (comp) + 1 (flags) + 16 (bm25).
	binary.LittleEndian.PutUint32(data[26:], 1<<28)
	if _, err := ReadSegment(bytes.NewReader(data)); err == nil {
		t.Error("expected error for inflated doc count")
	}
	binary.LittleEndian.PutUint32(data[26:], 1<<28+1)
	if _, err := ReadSegment(bytes.NewReader(data)); err == nil {
		t.Error("expected error for implausible doc count")
	}
}

func TestReadSegmentRawShortPostings(t *testing.T) {
	// Raw posting lists are decoded without per-read bounds checks, so a
	// list shorter than 8*docFreq must be rejected at load, not panic at
	// iteration.
	b := NewBuilder(WithCompression(CompressionRaw))
	b.AddDocument("solo", "alpha alpha beta", "doc:raw", 0.5)
	var buf bytes.Buffer
	if _, err := b.Finalize().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop trailing bytes: some prefixes cut inside a raw posting list.
	for cut := 1; cut < 24 && cut < len(full); cut++ {
		data := full[:len(full)-cut]
		s, err := ReadSegment(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for id := range s.termList {
			it := s.PostingsByID(int32(id))
			for it.Next() {
			}
		}
	}
}

func TestReadSegmentCorruptPostingDelta(t *testing.T) {
	// Flip bytes inside the serialized postings region: the segment must
	// either fail to load or iterate only in-range, ordered docIDs.
	s := buildTiny(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for off := 0; off < len(full); off++ {
		data := append([]byte(nil), full...)
		data[off] ^= 0xff
		got, err := ReadSegment(bytes.NewReader(data))
		if err != nil {
			continue
		}
		n := int32(got.NumDocs())
		for id := range got.termList {
			it := got.PostingsByID(int32(id))
			last := int32(-1)
			for it.Next() {
				if d := it.Doc(); d <= last || d >= n {
					t.Fatalf("offset %d: term %q docID %d out of order/range", off, got.termList[id], d)
				} else {
					last = d
				}
			}
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 500
	cfg.VocabSize = 2000
	cfg.MeanBodyTerms = 60
	s, err := BuildFromCorpus(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeserialize(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 500
	cfg.VocabSize = 2000
	cfg.MeanBodyTerms = 60
	s, err := BuildFromCorpus(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSegment(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
