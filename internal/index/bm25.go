package index

import "math"

// BM25Params are the Okapi BM25 free parameters. The defaults match the
// values used by the Lucene similarity the characterized benchmark serves
// with.
type BM25Params struct {
	K1 float64 // term-frequency saturation, typically 1.2
	B  float64 // length normalization, typically 0.75
}

// DefaultBM25 returns the standard parameterization.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// IDF returns the BM25+ inverse document frequency for a term with
// document frequency df in a collection of n documents. The +1 inside the
// log keeps it non-negative for very common terms.
func IDF(n, df int64) float64 {
	if n <= 0 || df <= 0 {
		return 0
	}
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// Score returns the BM25 contribution of one term occurrence set: idf is
// the term's IDF, freq the within-document frequency, docLen the document
// length in terms, and avgDocLen the collection's average document length.
func (p BM25Params) Score(idf float64, freq int32, docLen int32, avgDocLen float64) float64 {
	if freq <= 0 {
		return 0
	}
	f := float64(freq)
	norm := 1 - p.B
	if avgDocLen > 0 {
		norm += p.B * float64(docLen) / avgDocLen
	}
	return idf * f * (p.K1 + 1) / (f + p.K1*norm)
}

// MaxScore returns an upper bound on Score over any freq and docLen:
// the tf component saturates at (K1+1) as freq grows and docLen shrinks.
func (p BM25Params) MaxScore(idf float64) float64 {
	return idf * (p.K1 + 1)
}
