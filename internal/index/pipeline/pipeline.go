package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"websearchbench/internal/index"
)

// DefaultSegmentDocs is the per-segment document budget parallel builds
// use when none is configured: big enough that per-segment fixed costs
// (dictionary, skip tables, block maxima) amortize, small enough that a
// handful of workers all stay busy on modest corpora.
const DefaultSegmentDocs = 2048

// Config tunes a Pipeline. The zero value selects the defaults.
type Config struct {
	// Workers is the number of concurrent analyze/build workers (default
	// runtime.NumCPU()). Workers == 1 selects the serial path: one
	// Builder consumes the stream directly, and with no segment budget
	// configured the output is byte-identical to a single-shot
	// Builder/Finalize build.
	Workers int
	// SegmentDocs cuts a segment every this many documents. 0 means
	// DefaultSegmentDocs for parallel builds; for Workers == 1 (and no
	// SegmentBytes) it means the whole stream becomes one segment.
	SegmentDocs int
	// SegmentBytes additionally cuts a segment once its accumulated
	// title+body bytes reach this budget (0 = no byte budget). Both
	// budgets are evaluated by the single feeder, so chunk boundaries
	// are deterministic.
	SegmentBytes int64
	// MergeFanIn is how many adjacent same-tier segments the background
	// merge tier folds together at once (default 8, minimum 2).
	MergeFanIn int
	// Compact merges everything down to a single segment before Run
	// returns — the offline cmd/indexer mode. Without it, Run returns
	// the tiered segment set in document order.
	Compact bool
	// ChunkBuffer bounds how many pending chunks the feeder may run
	// ahead of the workers (default 2×Workers) — the backpressure depth.
	ChunkBuffer int
	// BuilderOptions configure every worker's private Builder (encoding,
	// analyzer, BM25 parameters). All workers must build identically or
	// the merge tier would refuse to combine their output.
	BuilderOptions []index.BuilderOption
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.SegmentDocs <= 0 {
		c.SegmentDocs = 0
		if c.Workers > 1 {
			c.SegmentDocs = DefaultSegmentDocs
		}
	}
	if c.MergeFanIn < 2 {
		c.MergeFanIn = 8
	}
	if c.ChunkBuffer <= 0 {
		c.ChunkBuffer = 2 * c.Workers
	}
	return c
}

// Stats is a point-in-time snapshot of a running (or finished) build,
// safe to read concurrently with Run — this is what cmd/indexer's
// progress ticker and the node-level observability counters poll.
type Stats struct {
	DocsIndexed  int64
	BytesIndexed int64
	SegmentsCut  int64
	Merges       int64
	// MergeBacklog is the number of built segments the merge tier is
	// still holding (waiting for neighbors, queued, or mid-merge).
	MergeBacklog int
	Elapsed      time.Duration
	// TimeToFirstSegment is how long after Run started the first segment
	// became searchable (zero until one has).
	TimeToFirstSegment time.Duration
}

// Result is a completed build: the output segments in document order
// (exactly one when Compact is set), plus the totals.
type Result struct {
	Segments           []*index.Segment
	Docs               int64
	Bytes              int64
	Elapsed            time.Duration
	TimeToFirstSegment time.Duration
}

// Pipeline is one parallel index build. Create with New, execute with
// Run (once), observe concurrently with Stats.
type Pipeline struct {
	cfg Config

	docs        atomic.Int64
	bytes       atomic.Int64
	segmentsCut atomic.Int64
	merges      atomic.Int64
	backlog     atomic.Int64
	startNanos  atomic.Int64
	firstSeg    atomic.Int64 // nanos from start to first finalized segment
}

// New returns a Pipeline for cfg.
func New(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg.withDefaults()}
}

// Config returns the pipeline's effective (defaulted) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Stats snapshots the build's progress counters.
func (p *Pipeline) Stats() Stats {
	st := Stats{
		DocsIndexed:  p.docs.Load(),
		BytesIndexed: p.bytes.Load(),
		SegmentsCut:  p.segmentsCut.Load(),
		Merges:       p.merges.Load(),
		MergeBacklog: int(p.backlog.Load()),
	}
	if s := p.startNanos.Load(); s != 0 {
		st.Elapsed = time.Duration(time.Now().UnixNano() - s)
	}
	if f := p.firstSeg.Load(); f != 0 {
		st.TimeToFirstSegment = time.Duration(f)
	}
	return st
}

// noteSegment counts one finalized segment and stamps time-to-first.
func (p *Pipeline) noteSegment() {
	p.segmentsCut.Add(1)
	if p.firstSeg.Load() == 0 {
		p.firstSeg.CompareAndSwap(0, time.Now().UnixNano()-p.startNanos.Load())
	}
}

// budgetReached reports whether a chunk at docs/bytes should be cut.
func (p *Pipeline) budgetReached(docs int, bytes int64) bool {
	if p.cfg.SegmentDocs > 0 && docs >= p.cfg.SegmentDocs {
		return true
	}
	return p.cfg.SegmentBytes > 0 && bytes >= p.cfg.SegmentBytes
}

// Run consumes the source to exhaustion and returns the built segments.
// It must be called at most once per Pipeline.
func (p *Pipeline) Run(src Source) (*Result, error) {
	start := time.Now()
	p.startNanos.Store(start.UnixNano())
	var segs []*index.Segment
	var err error
	if p.cfg.Workers == 1 {
		segs, err = p.runSerial(src)
	} else {
		segs, err = p.runParallel(src)
	}
	if err != nil {
		return nil, err
	}
	if p.cfg.Compact && len(segs) > 1 {
		merged, err := index.MergeSegments(segs)
		if err != nil {
			return nil, err
		}
		p.merges.Add(1)
		segs = []*index.Segment{merged}
	}
	if len(segs) == 0 {
		// An empty stream still yields one valid (empty) segment, so
		// callers can serialize or serve the result unconditionally.
		segs = []*index.Segment{index.NewBuilder(p.cfg.BuilderOptions...).Finalize()}
	}
	p.backlog.Store(0)
	res := &Result{
		Segments: segs,
		Docs:     p.docs.Load(),
		Bytes:    p.bytes.Load(),
		Elapsed:  time.Since(start),
	}
	if f := p.firstSeg.Load(); f != 0 {
		res.TimeToFirstSegment = time.Duration(f)
	}
	return res, nil
}

// runSerial is the Workers == 1 path: one Builder consumes the stream in
// order, cutting segments at the configured budget. With no budget at
// all, this is exactly a single-shot Builder build — byte-identical
// output to the pre-pipeline cmd/indexer.
func (p *Pipeline) runSerial(src Source) ([]*index.Segment, error) {
	var segs []*index.Segment
	b := index.NewBuilder(p.cfg.BuilderOptions...)
	var chunkDocs int
	var chunkBytes int64
	cut := func() {
		if chunkDocs == 0 {
			return
		}
		segs = append(segs, b.Finalize())
		p.noteSegment()
		b = index.NewBuilder(p.cfg.BuilderOptions...)
		chunkDocs, chunkBytes = 0, 0
	}
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		b.AddDocument(d.Title, d.Body, d.URL, d.Quality)
		n := int64(len(d.Title) + len(d.Body))
		p.docs.Add(1)
		p.bytes.Add(n)
		chunkDocs++
		chunkBytes += n
		if p.budgetReached(chunkDocs, chunkBytes) {
			cut()
		}
	}
	cut()
	return segs, nil
}

// chunk is one contiguous slice of the document stream, identified by
// its position; chunk idx covers documents [idx*budget, ...) so a
// segment's content is a pure function of the stream, not of scheduling.
type chunk struct {
	idx  int
	docs []Doc
}

// runParallel is the N-worker path: a single feeder cuts the stream into
// deterministic chunks, workers race to build them into segments with
// private Builders, and the merge tier folds finished segments in the
// background while building continues.
func (p *Pipeline) runParallel(src Source) ([]*index.Segment, error) {
	tier := newMergeTier(p)
	chunks := make(chan chunk, p.cfg.ChunkBuffer)

	go func() {
		defer close(chunks)
		idx := 0
		var cur []Doc
		var curBytes int64
		for {
			d, ok := src.Next()
			if !ok {
				break
			}
			cur = append(cur, d)
			curBytes += int64(len(d.Title) + len(d.Body))
			if p.budgetReached(len(cur), curBytes) {
				chunks <- chunk{idx: idx, docs: cur}
				idx++
				cur, curBytes = nil, 0
			}
		}
		if len(cur) > 0 {
			chunks <- chunk{idx: idx, docs: cur}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				b := index.NewBuilder(p.cfg.BuilderOptions...)
				var n int64
				for _, d := range c.docs {
					b.AddDocument(d.Title, d.Body, d.URL, d.Quality)
					n += int64(len(d.Title) + len(d.Body))
				}
				seg := b.Finalize()
				p.docs.Add(int64(len(c.docs)))
				p.bytes.Add(n)
				p.noteSegment()
				tier.add(0, c.idx, seg)
			}
		}()
	}
	wg.Wait()
	return tier.drain()
}
