package pipeline

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"websearchbench/internal/corpus"
	"websearchbench/internal/index"
	"websearchbench/internal/search"
)

func testCorpus(t testing.TB, n int) []corpus.Document {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = n
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate()
}

func singleShot(docs []corpus.Document, opts ...index.BuilderOption) *index.Segment {
	b := index.NewBuilder(opts...)
	for _, d := range docs {
		b.AddCorpusDoc(d)
	}
	return b.Finalize()
}

func segmentBytes(t testing.TB, seg *index.Segment) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := seg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func globalStatsFor(seg *index.Segment) *search.CollectionStats {
	st := &search.CollectionStats{
		NumDocs:   int64(seg.NumDocs()),
		AvgDocLen: seg.AvgDocLen(),
		DocFreqs:  make(map[string]int64, len(seg.Terms())),
	}
	for _, term := range seg.Terms() {
		ti, _ := seg.Term(term)
		st.DocFreqs[term] = int64(ti.DocFreq)
	}
	return st
}

func hitsEquivalent(a, b []search.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

// sampleQueries draws random multi-term queries from the segment's own
// vocabulary, so AND queries have a fighting chance of matching.
func sampleQueries(seg *index.Segment, rng *rand.Rand, n int) []string {
	vocab := seg.Terms()
	qs := make([]string, n)
	for i := range qs {
		k := 1 + rng.Intn(3)
		var q bytes.Buffer
		for j := 0; j < k; j++ {
			if j > 0 {
				q.WriteByte(' ')
			}
			q.WriteString(vocab[rng.Intn(len(vocab))])
		}
		qs[i] = q.String()
	}
	return qs
}

// TestWorkersOneNoBudgetByteIdentical locks the cmd/indexer compatibility
// contract: Workers == 1 with no segment budget is exactly the
// pre-pipeline single-shot build.
func TestWorkersOneNoBudgetByteIdentical(t *testing.T) {
	docs := testCorpus(t, 400)
	want := segmentBytes(t, singleShot(docs))

	p := New(Config{Workers: 1})
	res, err := p.Run(FromDocs(docs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 {
		t.Fatalf("got %d segments, want 1", len(res.Segments))
	}
	if got := segmentBytes(t, res.Segments[0]); !bytes.Equal(got, want) {
		t.Fatalf("serial pipeline output differs from single-shot build (%d vs %d bytes)", len(got), len(want))
	}
	if res.Docs != int64(len(docs)) {
		t.Fatalf("Docs = %d, want %d", res.Docs, len(docs))
	}
}

// TestParallelCompactByteIdentical is the core determinism property: for
// a fixed input order, the compacted parallel build is byte-for-byte the
// single-shot build — across worker counts, chunk budgets, merge fan-ins
// and posting encodings. Odd chunk sizes exercise ragged tails that
// never complete an aligned merge group.
func TestParallelCompactByteIdentical(t *testing.T) {
	docs := testCorpus(t, 1100)
	encodings := []struct {
		name string
		opts []index.BuilderOption
	}{
		{"packed", nil},
		{"varint", []index.BuilderOption{index.WithCompression(index.CompressionVarint)}},
	}
	for _, enc := range encodings {
		want := segmentBytes(t, singleShot(docs, enc.opts...))
		for _, cfg := range []Config{
			{Workers: 2, SegmentDocs: 128, MergeFanIn: 2},
			{Workers: 4, SegmentDocs: 173, MergeFanIn: 3},
			{Workers: 7, SegmentDocs: 64, MergeFanIn: 8},
		} {
			cfg.Compact = true
			cfg.BuilderOptions = enc.opts
			p := New(cfg)
			res, err := p.Run(FromDocs(docs))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", enc.name, cfg.Workers, err)
			}
			if len(res.Segments) != 1 {
				t.Fatalf("%s workers=%d: got %d segments, want 1", enc.name, cfg.Workers, len(res.Segments))
			}
			if got := segmentBytes(t, res.Segments[0]); !bytes.Equal(got, want) {
				t.Fatalf("%s workers=%d segdocs=%d fanin=%d: output differs from single-shot build",
					enc.name, cfg.Workers, cfg.SegmentDocs, cfg.MergeFanIn)
			}
		}
	}
}

// TestTieredOutputDeterministic runs the same non-compacted build twice
// and checks the segment set is structurally and byte-wise identical:
// which merges happened depends only on the chunk count and fan-in,
// never on worker scheduling.
func TestTieredOutputDeterministic(t *testing.T) {
	docs := testCorpus(t, 900)
	run := func() []*index.Segment {
		p := New(Config{Workers: 4, SegmentDocs: 100, MergeFanIn: 2})
		res, err := p.Run(FromDocs(docs))
		if err != nil {
			t.Fatal(err)
		}
		return res.Segments
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs produced %d vs %d segments", len(a), len(b))
	}
	var total int
	for i := range a {
		if a[i].NumDocs() != b[i].NumDocs() {
			t.Fatalf("segment %d: %d vs %d docs", i, a[i].NumDocs(), b[i].NumDocs())
		}
		if !bytes.Equal(segmentBytes(t, a[i]), segmentBytes(t, b[i])) {
			t.Fatalf("segment %d bytes differ between identical runs", i)
		}
		total += a[i].NumDocs()
	}
	if total != len(docs) {
		t.Fatalf("segments hold %d docs, want %d", total, len(docs))
	}
	// 9 chunks at fan-in 2 → 8 fold into one tier-3 segment, 1 tail.
	if len(a) != 2 {
		t.Fatalf("got %d segments, want 2 (tiered 8 + tail 1)", len(a))
	}
}

// TestTieredSearchEquivalence checks the tiered (non-compacted) segment
// set is searchable with results identical to the single-shot build:
// searching every segment under global collection statistics and merging
// the per-segment top-k by (score desc, global docID asc) yields exactly
// the single-index top-k, for AND and OR and both encodings.
func TestTieredSearchEquivalence(t *testing.T) {
	docs := testCorpus(t, 800)
	rng := rand.New(rand.NewSource(23))
	for _, encOpts := range [][]index.BuilderOption{
		nil,
		{index.WithCompression(index.CompressionVarint)},
	} {
		single := singleShot(docs, encOpts...)
		stats := globalStatsFor(single)

		p := New(Config{Workers: 4, SegmentDocs: 97, MergeFanIn: 2, BuilderOptions: encOpts})
		res, err := p.Run(FromDocs(docs))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Segments) < 2 {
			t.Fatalf("want a multi-segment tiered result, got %d", len(res.Segments))
		}

		const topK = 10
		queries := sampleQueries(single, rng, 40)
		for _, mode := range []search.Mode{search.ModeOr, search.ModeAnd} {
			for _, raw := range queries {
				ref := search.NewSearcher(single, search.Options{TopK: topK, Stats: stats}).
					ParseAndSearch(raw, mode)

				var merged []search.Hit
				base := int32(0)
				for _, seg := range res.Segments {
					r := search.NewSearcher(seg, search.Options{TopK: topK, Stats: stats}).
						ParseAndSearch(raw, mode)
					for _, h := range r.Hits {
						merged = append(merged, search.Hit{Doc: base + h.Doc, Score: h.Score})
					}
					base += int32(seg.NumDocs())
				}
				sort.Slice(merged, func(i, j int) bool {
					if merged[i].Score != merged[j].Score {
						return merged[i].Score > merged[j].Score
					}
					return merged[i].Doc < merged[j].Doc
				})
				if len(merged) > topK {
					merged = merged[:topK]
				}
				if !hitsEquivalent(ref.Hits, merged) {
					t.Fatalf("mode=%v query=%q: tiered top-k differs from single-shot\nsingle: %v\ntiered: %v",
						mode, raw, ref.Hits, merged)
				}
			}
		}
	}
}

// TestStreamingSourceAndStats drives the pipeline the way cmd/indexer
// does — a producer goroutine feeding a bounded channel — while a second
// goroutine hammers Stats() concurrently with the build. Run under
// -race this is the pipeline's data-race canary; the final counters must
// also reconcile exactly.
func TestStreamingSourceAndStats(t *testing.T) {
	docs := testCorpus(t, 600)
	rng := rand.New(rand.NewSource(7))
	// Randomize only the order documents are *authored* in; the stream
	// order itself is whatever the producer sends, and determinism is
	// relative to that order, so shuffle then use the shuffled order for
	// both the pipeline and the reference build.
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	want := segmentBytes(t, singleShot(docs))

	var wantBytes int64
	for _, d := range docs {
		wantBytes += int64(len(d.Title) + len(d.Body))
	}

	ch := make(chan Doc, 16)
	go func() {
		defer close(ch)
		for _, d := range docs {
			ch <- Doc{Title: d.Title, Body: d.Body, URL: d.URL, Quality: d.Quality}
		}
	}()

	p := New(Config{Workers: 4, SegmentDocs: 50, MergeFanIn: 2, Compact: true})
	done := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := p.Stats()
			if st.DocsIndexed < 0 || st.MergeBacklog < 0 {
				panic("negative pipeline counters")
			}
		}
	}()

	res, err := p.Run(FromChan(ch))
	close(done)
	poller.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs != int64(len(docs)) || res.Bytes != wantBytes {
		t.Fatalf("counters: docs=%d bytes=%d, want %d/%d", res.Docs, res.Bytes, len(docs), wantBytes)
	}
	st := p.Stats()
	if st.SegmentsCut < 2 {
		t.Fatalf("SegmentsCut = %d, want >= 2", st.SegmentsCut)
	}
	if st.TimeToFirstSegment <= 0 {
		t.Fatal("TimeToFirstSegment not recorded")
	}
	if got := segmentBytes(t, res.Segments[0]); !bytes.Equal(got, want) {
		t.Fatal("streamed parallel build differs from single-shot build over the same order")
	}
}

// TestByteBudget cuts on accumulated document bytes rather than count.
func TestByteBudget(t *testing.T) {
	docs := testCorpus(t, 300)
	p := New(Config{Workers: 2, SegmentBytes: 64 << 10, SegmentDocs: -1, MergeFanIn: 2})
	// SegmentDocs < 0 is normalized to 0 (bytes-only budget).
	if p.Config().SegmentDocs != 0 && p.Config().SegmentDocs != DefaultSegmentDocs {
		t.Fatalf("unexpected normalized SegmentDocs %d", p.Config().SegmentDocs)
	}
	res, err := p.Run(FromDocs(docs))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, s := range res.Segments {
		total += s.NumDocs()
	}
	if total != len(docs) {
		t.Fatalf("segments hold %d docs, want %d", total, len(docs))
	}
	if p.Stats().SegmentsCut < 2 {
		t.Fatalf("byte budget produced %d segments, want >= 2", p.Stats().SegmentsCut)
	}
}

// TestEmptyStream: an empty source still yields one valid empty segment.
func TestEmptyStream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(Config{Workers: workers, Compact: true})
		res, err := p.Run(FromDocs(nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Segments) != 1 || res.Segments[0].NumDocs() != 0 {
			t.Fatalf("workers=%d: want one empty segment, got %d segments", workers, len(res.Segments))
		}
	}
}

// TestFromCorpusMatchesFromDocs: the streaming generator source produces
// the same build as the materialized slice.
func TestFromCorpusMatchesFromDocs(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 350
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := gen.Generate()
	want := segmentBytes(t, singleShot(docs))

	gen2, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Workers: 3, SegmentDocs: 80, MergeFanIn: 2, Compact: true})
	res, err := p.Run(FromCorpus(gen2))
	if err != nil {
		t.Fatal(err)
	}
	if got := segmentBytes(t, res.Segments[0]); !bytes.Equal(got, want) {
		t.Fatal("FromCorpus build differs from materialized-corpus build")
	}
}
