// Package pipeline implements high-throughput parallel index
// construction: a streaming, backpressured document source feeds N
// workers that each own a private Builder (analysis included, so
// tokenization parallelizes too) and cut independent segments at a
// configurable document/byte budget, while a background merge tier folds
// finished segments together with the existing size-tiered
// MergeSegmentsFiltered machinery — concurrently with building.
//
// Determinism contract: the source is consumed in order by a single
// feeder that cuts the stream into fixed chunks; a chunk's content, and
// therefore the segment built from it, depends only on its position in
// the stream, never on which worker built it or when. Background merges
// combine only aligned, fully-present runs of adjacent chunks, so the
// set of output segments (and, with Compact, the single merged segment)
// is byte-for-byte reproducible for a fixed input order — independent of
// worker count, scheduling, and merge timing.
package pipeline

import (
	"websearchbench/internal/corpus"
)

// Doc is one document flowing through the pipeline.
type Doc struct {
	Title   string
	Body    string
	URL     string
	Quality float64
}

// Source streams documents into the pipeline. Next returns the next
// document in order, or ok=false when the stream is exhausted. Sources
// are consumed by a single goroutine; implementations need not be
// concurrency-safe.
type Source interface {
	Next() (d Doc, ok bool)
}

// chanSource adapts a channel of documents: the canonical streaming,
// backpressured feed. The producer blocks when the pipeline falls
// behind (bounded channel) and closes the channel at end of stream.
type chanSource struct {
	ch <-chan Doc
}

// FromChan returns a Source reading from ch until it is closed. Use a
// bounded channel so a slow pipeline exerts backpressure on the
// producer.
func FromChan(ch <-chan Doc) Source { return &chanSource{ch: ch} }

func (s *chanSource) Next() (Doc, bool) {
	d, ok := <-s.ch
	return d, ok
}

// corpusSource pulls documents from the synthetic corpus generator in
// document order — generation interleaves with indexing instead of
// materializing the whole corpus first.
type corpusSource struct {
	gen  *corpus.Generator
	next int
	n    int
}

// FromCorpus returns a Source streaming the generator's full corpus.
func FromCorpus(gen *corpus.Generator) Source {
	return &corpusSource{gen: gen, n: gen.Config().NumDocs}
}

func (s *corpusSource) Next() (Doc, bool) {
	if s.next >= s.n {
		return Doc{}, false
	}
	d := s.gen.GenerateDoc(s.next)
	s.next++
	return Doc{Title: d.Title, Body: d.Body, URL: d.URL, Quality: d.Quality}, true
}

// docsSource streams an in-memory slice, for tests and experiments that
// pre-generate documents to keep generation cost out of the measurement.
type docsSource struct {
	docs []corpus.Document
	next int
}

// FromDocs returns a Source over an already-materialized document slice.
func FromDocs(docs []corpus.Document) Source { return &docsSource{docs: docs} }

func (s *docsSource) Next() (Doc, bool) {
	if s.next >= len(s.docs) {
		return Doc{}, false
	}
	d := s.docs[s.next]
	s.next++
	return Doc{Title: d.Title, Body: d.Body, URL: d.URL, Quality: d.Quality}, true
}
