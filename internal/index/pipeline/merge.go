package pipeline

import (
	"sort"
	"sync"

	"websearchbench/internal/index"
)

// The background merge tier. Built segments land in tier 0 under their
// chunk index; whenever an aligned group of MergeFanIn adjacent
// same-tier segments is complete, a background goroutine folds them with
// index.MergeSegments into one tier+1 segment — concurrently with the
// workers still building. Alignment (group g at tier t covers chunks
// [g*F^(t+1), (g+1)*F^(t+1))) makes merge decisions purely structural:
// which merges happen depends only on how many chunks the stream
// produced, never on completion order, so the output segment set is
// deterministic.

// mergeJob is one scheduled fold: inputs are adjacent in document order.
type mergeJob struct {
	tier   int // output tier
	group  int // output slot index within the output tier
	inputs []*index.Segment
}

type mergeTier struct {
	p     *Pipeline
	fanIn int

	mu       sync.Mutex
	slots    map[int]map[int]*index.Segment // tier → slot index → segment
	queue    []mergeJob
	inflight int
	closing  bool
	err      error

	wake chan struct{} // buffered(1): nudges the merge goroutine
	idle chan struct{} // buffered(1): signals queue drained to drain()
	done chan struct{}
}

func newMergeTier(p *Pipeline) *mergeTier {
	t := &mergeTier{
		p:     p,
		fanIn: p.cfg.MergeFanIn,
		slots: make(map[int]map[int]*index.Segment),
		wake:  make(chan struct{}, 1),
		idle:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go t.mergeLoop()
	return t
}

// add registers a finished segment at (tier, idx) and schedules a merge
// when it completes its aligned group. Called by build workers (tier 0)
// and by the merge goroutine itself (cascading carries).
func (t *mergeTier) add(tier, idx int, seg *index.Segment) {
	t.mu.Lock()
	m := t.slots[tier]
	if m == nil {
		m = make(map[int]*index.Segment)
		t.slots[tier] = m
	}
	m[idx] = seg
	t.p.backlog.Add(1)
	g := idx / t.fanIn
	full := true
	for i := g * t.fanIn; i < (g+1)*t.fanIn; i++ {
		if m[i] == nil {
			full = false
			break
		}
	}
	if full {
		inputs := make([]*index.Segment, 0, t.fanIn)
		for i := g * t.fanIn; i < (g+1)*t.fanIn; i++ {
			inputs = append(inputs, m[i])
			delete(m, i)
		}
		t.queue = append(t.queue, mergeJob{tier: tier + 1, group: g, inputs: inputs})
	}
	t.mu.Unlock()
	t.nudge()
}

func (t *mergeTier) nudge() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

func (t *mergeTier) mergeLoop() {
	defer close(t.done)
	for {
		t.mu.Lock()
		if len(t.queue) == 0 {
			closing := t.closing
			t.mu.Unlock()
			if closing {
				return
			}
			select {
			case t.idle <- struct{}{}:
			default:
			}
			<-t.wake
			continue
		}
		job := t.queue[0]
		t.queue = t.queue[1:]
		t.inflight++
		t.mu.Unlock()

		merged, err := index.MergeSegments(job.inputs)

		t.mu.Lock()
		t.inflight--
		if err != nil {
			// Uniform builder options make this unreachable in practice;
			// latch the error and drop the inputs rather than deadlock.
			if t.err == nil {
				t.err = err
			}
			t.p.backlog.Add(-int64(len(job.inputs)))
			t.mu.Unlock()
			continue
		}
		t.p.backlog.Add(-int64(len(job.inputs)))
		t.mu.Unlock()
		t.p.merges.Add(1)
		t.add(job.tier, job.group, merged)
	}
}

// drain waits for every queued and cascading merge to finish, stops the
// merge goroutine, and returns the remaining segments in document order.
// Called after all workers have exited, so no new tier-0 adds can race.
func (t *mergeTier) drain() ([]*index.Segment, error) {
	for {
		t.mu.Lock()
		busy := len(t.queue) > 0 || t.inflight > 0
		if !busy {
			t.closing = true
		}
		t.mu.Unlock()
		if !busy {
			break
		}
		<-t.idle
	}
	t.nudge()
	<-t.done

	if t.err != nil {
		return nil, t.err
	}
	// Collect leftovers: incomplete groups at every tier (the stream's
	// tail never fills its aligned group). A tier-t slot idx covers
	// chunks starting at idx * fanIn^t.
	type span struct {
		start int
		seg   *index.Segment
	}
	var spans []span
	for tier, m := range t.slots {
		mult := 1
		for i := 0; i < tier; i++ {
			mult *= t.fanIn
		}
		for idx, seg := range m {
			spans = append(spans, span{start: idx * mult, seg: seg})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	segs := make([]*index.Segment, len(spans))
	for i, s := range spans {
		segs[i] = s.seg
	}
	return segs, nil
}
