package index

import "math"

// Skip lists: long posting lists carry a sparse table of (docID, byte
// offset, postings consumed) checkpoints so SkipTo can jump over runs of
// postings instead of decoding them one by one — the structure that makes
// conjunctive (leapfrog) evaluation sublinear, exactly as in the Lucene
// index the benchmark serves with. Tables are built in memory when a
// segment is finalized or loaded from formats v02–v04; format v05 also
// serializes them (their byte positions double as the block boundaries
// remote readers use for range fetches — see v05.go).
//
// Block-max metadata rides on the same block structure: each run of
// skipInterval postings between checkpoints is a "block", and the segment
// records the block's maximum BM25 contribution (quantized, rounded up so
// it stays a true upper bound). Block-Max pruning consults these bounds
// via NextShallow/BlockMax to rule out whole blocks without decoding a
// single posting. Unlike the skip tables, block maxima ARE serialized
// (formats v03+) — they are exactly the per-block impact scores Lucene
// stores next to its skip data.
//
// Packed posting lists (format v04) reuse this block structure directly:
// packedBlockLen == skipInterval, so every bit-packed block is one skip
// block and one block-max block.

const (
	// skipInterval is the number of postings between checkpoints. It is
	// also the block length for block-max metadata.
	skipInterval = 64
	// skipMinDocFreq is the list length below which a table is not worth
	// building.
	skipMinDocFreq = 128
)

// skipEntry is the iterator state immediately after decoding a posting.
type skipEntry struct {
	doc  int32 // docID of the checkpoint posting
	pos  int32 // byte offset just past the checkpoint posting
	used int32 // postings consumed through the checkpoint (1-based)
}

// buildSkips constructs skip tables for all qualifying posting lists.
// Raw-compression segments need none: their fixed-width records support
// direct binary search. Packed lists share the varint path — skipInterval
// equals packedBlockLen, so every checkpoint lands exactly on a packed
// block boundary (the iterator's byte position just after posting
// k·skipInterval is the start of block k+1).
func (s *Segment) buildSkips() {
	if s.comp == CompressionRaw {
		return
	}
	s.skips = make([][]skipEntry, len(s.postings))
	for id := range s.postings {
		df := s.docFreqs[id]
		if df < skipMinDocFreq {
			continue
		}
		it := s.PostingsByID(int32(id))
		var table []skipEntry
		for i := int32(1); it.Next(); i++ {
			if i%skipInterval == 0 {
				table = append(table, skipEntry{doc: it.Doc(), pos: int32(it.pos), used: i})
			}
		}
		s.skips[id] = table
	}
}

// applySkips attaches a term's skip table to an iterator.
func (s *Segment) applySkips(id int32, it *PostingsIterator) {
	if s.skips != nil {
		it.skips = s.skips[id]
	}
}

// seekSkip jumps the iterator to the last checkpoint strictly before
// target, if that checkpoint is ahead of the current position. It returns
// true when a jump happened.
func (it *PostingsIterator) seekSkip(target int32) bool {
	if len(it.skips) == 0 {
		return false
	}
	// Find the last entry with doc < target.
	lo, hi := 0, len(it.skips)
	for lo < hi {
		mid := (lo + hi) / 2
		if it.skips[mid].doc < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return false
	}
	e := it.skips[lo-1]
	// Only jump forward.
	if e.doc <= it.doc {
		return false
	}
	total := it.totalCount()
	it.doc = e.doc
	it.pos = int(e.pos)
	it.count = total - e.used
	// Checkpoints land on packed block boundaries; drop any partially
	// consumed scratch block so the next Next decodes at the new offset.
	it.bIdx, it.bLen = 0, 0
	return true
}

// totalCount reconstructs the list length from remaining count plus
// consumed postings; iterators remember it via the initial count.
func (it *PostingsIterator) totalCount() int32 { return it.initCount }

// numBlocksFor returns the number of block-max blocks a varint or packed
// posting list of the given length carries. Lists long enough for a skip table
// get one block per checkpoint plus a final (possibly partial) block;
// shorter lists are a single block bounded by the term-level MaxScore.
func numBlocksFor(df int32) int {
	if df < skipMinDocFreq {
		return 1
	}
	return int(df/skipInterval) + 1
}

// quantizeUp converts an exact bound to float32 without ever rounding
// below it: a bound that rounds down stops being a bound.
func quantizeUp(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, math.MaxFloat32)
	}
	return f
}

// computeBlockMaxes records, for every varint or packed posting list,
// the maximum BM25 contribution within each skipInterval-long block.
// Raw-compression segments carry no block metadata (Block-Max evaluation
// falls back to plain MaxScore there). Must run after computeMaxScores
// and buildSkips.
func (s *Segment) computeBlockMaxes() {
	if s.comp == CompressionRaw {
		s.blockMaxes = nil
		return
	}
	n := int64(len(s.docLens))
	avg := s.AvgDocLen()
	s.blockMaxes = make([][]float32, len(s.postings))
	for id := range s.postings {
		df := s.docFreqs[id]
		if df < skipMinDocFreq {
			// One block covering the whole list: the exact term-level
			// bound already stored in the dictionary.
			s.blockMaxes[id] = []float32{s.maxScores[id]}
			continue
		}
		idf := IDF(n, int64(df))
		blocks := make([]float32, numBlocksFor(df))
		it := s.PostingsByID(int32(id))
		var blockMax float64
		for i := int32(1); it.Next(); i++ {
			sc := s.bm25.Score(idf, it.Freq(), s.docLens[it.Doc()], avg)
			if sc > blockMax {
				blockMax = sc
			}
			if i%skipInterval == 0 {
				blocks[i/skipInterval-1] = quantizeUp(blockMax)
				blockMax = 0
			}
		}
		blocks[len(blocks)-1] = quantizeUp(blockMax)
		s.blockMaxes[id] = blocks
	}
}

// applyBlockMax attaches a term's block maxima to an iterator.
func (s *Segment) applyBlockMax(id int32, it *PostingsIterator) {
	if s.blockMaxes != nil {
		it.blockMaxes = s.blockMaxes[id]
	}
}

// HasBlockMax reports whether the segment carries block-max metadata
// (varint and packed segments built or merged by this version; absent on
// raw segments and segments loaded from the legacy v02 on-disk format).
func (s *Segment) HasBlockMax() bool { return s.blockMaxes != nil }

// HasBlockMax reports whether per-block score bounds are available on
// this iterator.
func (it *PostingsIterator) HasBlockMax() bool { return len(it.blockMaxes) > 0 }

// NextShallow advances the shallow block cursor — without decoding any
// posting — to the first block that can contain a docID >= target. It
// returns false when the iterator carries no block metadata. Targets
// must be non-decreasing across calls (the cursor only moves forward),
// which document-at-a-time evaluation guarantees; successive calls are
// therefore amortized O(1).
func (it *PostingsIterator) NextShallow(target int32) bool {
	if len(it.blockMaxes) == 0 {
		return false
	}
	// Block j ends at skips[j].doc; the final block runs to the end of
	// the list (its boundary is unbounded, so the cursor stops there).
	for it.shallow < len(it.skips) && it.skips[it.shallow].doc < target {
		it.shallow++
	}
	return true
}

// BlockMax returns an upper bound on the term's BM25 contribution over
// the current shallow block (the block NextShallow last positioned on).
// With no block metadata it returns +Inf so a caller that skipped the
// HasBlockMax check can never prune incorrectly.
func (it *PostingsIterator) BlockMax() float64 {
	if it.shallow < len(it.blockMaxes) {
		return float64(it.blockMaxes[it.shallow])
	}
	return math.Inf(1)
}
