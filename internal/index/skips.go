package index

// Skip lists: long posting lists carry a sparse table of (docID, byte
// offset, postings consumed) checkpoints so SkipTo can jump over runs of
// postings instead of decoding them one by one — the structure that makes
// conjunctive (leapfrog) evaluation sublinear, exactly as in the Lucene
// index the benchmark serves with. Tables are built in memory when a
// segment is finalized or loaded; they are derived data and never
// serialized.

const (
	// skipInterval is the number of postings between checkpoints.
	skipInterval = 64
	// skipMinDocFreq is the list length below which a table is not worth
	// building.
	skipMinDocFreq = 128
)

// skipEntry is the iterator state immediately after decoding a posting.
type skipEntry struct {
	doc  int32 // docID of the checkpoint posting
	pos  int32 // byte offset just past the checkpoint posting
	used int32 // postings consumed through the checkpoint (1-based)
}

// buildSkips constructs skip tables for all qualifying posting lists.
// Raw-compression segments need none: their fixed-width records support
// direct binary search.
func (s *Segment) buildSkips() {
	if s.comp != CompressionVarint {
		return
	}
	s.skips = make([][]skipEntry, len(s.postings))
	for id := range s.postings {
		df := s.docFreqs[id]
		if df < skipMinDocFreq {
			continue
		}
		it := s.PostingsByID(int32(id))
		var table []skipEntry
		for i := int32(1); it.Next(); i++ {
			if i%skipInterval == 0 {
				table = append(table, skipEntry{doc: it.Doc(), pos: int32(it.pos), used: i})
			}
		}
		s.skips[id] = table
	}
}

// applySkips attaches a term's skip table to an iterator.
func (s *Segment) applySkips(id int32, it *PostingsIterator) {
	if s.skips != nil {
		it.skips = s.skips[id]
	}
}

// seekSkip jumps the iterator to the last checkpoint strictly before
// target, if that checkpoint is ahead of the current position. It returns
// true when a jump happened.
func (it *PostingsIterator) seekSkip(target int32) bool {
	if len(it.skips) == 0 {
		return false
	}
	// Find the last entry with doc < target.
	lo, hi := 0, len(it.skips)
	for lo < hi {
		mid := (lo + hi) / 2
		if it.skips[mid].doc < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return false
	}
	e := it.skips[lo-1]
	// Only jump forward.
	if e.doc <= it.doc {
		return false
	}
	total := it.totalCount()
	it.doc = e.doc
	it.pos = int(e.pos)
	it.count = total - e.used
	return true
}

// totalCount reconstructs the list length from remaining count plus
// consumed postings; iterators remember it via the initial count.
func (it *PostingsIterator) totalCount() int32 { return it.initCount }
