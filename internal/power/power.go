// Package power models server power draw and energy per query, the metric
// behind the paper's low-power-server comparison. It uses the standard
// linear utilization model (idle power plus a utilization-proportional
// dynamic component) with constants typical of the two server classes the
// paper contrasts.
package power

import (
	"fmt"
	"math"
)

// Model is a server power model.
type Model struct {
	Name      string
	IdleWatts float64
	PeakWatts float64
}

// XeonLike returns a conventional two-socket server-class power model.
func XeonLike() Model {
	return Model{Name: "xeon-like", IdleWatts: 150, PeakWatts: 300}
}

// AtomLike returns a low-power microserver-class power model.
func AtomLike() Model {
	return Model{Name: "atom-like", IdleWatts: 18, PeakWatts: 45}
}

func (m Model) validate() error {
	if m.IdleWatts < 0 || m.PeakWatts < m.IdleWatts {
		return fmt.Errorf("power: invalid model %+v", m)
	}
	return nil
}

// Power returns the draw in watts at the given utilization, clamped to
// [0, 1].
func (m Model) Power(utilization float64) float64 {
	u := math.Min(1, math.Max(0, utilization))
	return m.IdleWatts + (m.PeakWatts-m.IdleWatts)*u
}

// EnergyPerQuery returns joules per query for a server running at the
// given utilization and sustaining throughput queries/second. It returns
// +Inf for zero throughput (an idle server burns energy forever).
func (m Model) EnergyPerQuery(utilization, throughputQPS float64) float64 {
	if throughputQPS <= 0 {
		return math.Inf(1)
	}
	return m.Power(utilization) / throughputQPS
}

// ScaleFrequency returns the model for the same server run at a DVFS
// frequency ratio f of nominal (0 < f). Static (idle) power is unchanged;
// the dynamic component scales with the classic f^3 law (voltage tracks
// frequency, P_dyn ~ C V^2 f).
func (m Model) ScaleFrequency(f float64) Model {
	if f <= 0 {
		f = 1
	}
	dyn := m.PeakWatts - m.IdleWatts
	return Model{
		Name:      fmt.Sprintf("%s@%.2f", m.Name, f),
		IdleWatts: m.IdleWatts,
		PeakWatts: m.IdleWatts + dyn*f*f*f,
	}
}

// ProportionalityIndex is Barroso's energy-proportionality measure:
// 1 - idle/peak. 1.0 is perfectly proportional, 0 means flat power.
func (m Model) ProportionalityIndex() float64 {
	if m.PeakWatts == 0 {
		return 0
	}
	return 1 - m.IdleWatts/m.PeakWatts
}

// Provision returns how many servers of a class, each sustaining
// perServerQPS at the target QoS, are needed to serve targetQPS, and the
// fleet's total power assuming load spreads evenly.
func Provision(m Model, perServerQPS, targetQPS float64) (servers int, totalWatts float64, err error) {
	if err := m.validate(); err != nil {
		return 0, 0, err
	}
	if perServerQPS <= 0 || targetQPS <= 0 {
		return 0, 0, fmt.Errorf("power: non-positive QPS (per-server %v, target %v)", perServerQPS, targetQPS)
	}
	servers = int(math.Ceil(targetQPS / perServerQPS))
	perServerLoad := targetQPS / float64(servers) / perServerQPS
	totalWatts = float64(servers) * m.Power(perServerLoad)
	return servers, totalWatts, nil
}
