package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerLinear(t *testing.T) {
	m := Model{Name: "m", IdleWatts: 100, PeakWatts: 200}
	tests := []struct{ u, want float64 }{
		{0, 100},
		{0.5, 150},
		{1, 200},
		{-1, 100}, // clamped
		{2, 200},  // clamped
	}
	for _, tt := range tests {
		if got := m.Power(tt.u); got != tt.want {
			t.Errorf("Power(%v) = %v, want %v", tt.u, got, tt.want)
		}
	}
}

func TestEnergyPerQuery(t *testing.T) {
	m := Model{Name: "m", IdleWatts: 100, PeakWatts: 200}
	if got := m.EnergyPerQuery(0.5, 100); got != 1.5 {
		t.Errorf("EnergyPerQuery = %v, want 1.5", got)
	}
	if got := m.EnergyPerQuery(0.5, 0); !math.IsInf(got, 1) {
		t.Errorf("zero throughput energy = %v, want +Inf", got)
	}
}

func TestProportionalityIndex(t *testing.T) {
	if got := XeonLike().ProportionalityIndex(); got != 0.5 {
		t.Errorf("xeon PI = %v, want 0.5", got)
	}
	flat := Model{Name: "flat", IdleWatts: 100, PeakWatts: 100}
	if flat.ProportionalityIndex() != 0 {
		t.Error("flat model PI should be 0")
	}
	if (Model{}).ProportionalityIndex() != 0 {
		t.Error("zero model PI should be 0")
	}
}

func TestAtomMoreEfficientAtPeak(t *testing.T) {
	// The low-power class must win on watts; whether it wins on energy
	// per query depends on achieved throughput — that is experiment E11.
	if AtomLike().PeakWatts >= XeonLike().PeakWatts/2 {
		t.Error("atom-like peak power should be far below xeon-like")
	}
}

func TestProvision(t *testing.T) {
	m := Model{Name: "m", IdleWatts: 100, PeakWatts: 200}
	servers, watts, err := Provision(m, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if servers != 10 {
		t.Errorf("servers = %d, want 10", servers)
	}
	// 10 servers each at 100% load: 10 * 200W.
	if watts != 2000 {
		t.Errorf("watts = %v, want 2000", watts)
	}
	// Non-divisible target rounds up and runs below peak.
	servers, watts, err = Provision(m, 100, 1050)
	if err != nil {
		t.Fatal(err)
	}
	if servers != 11 {
		t.Errorf("servers = %d, want 11", servers)
	}
	wantPer := m.Power(1050.0 / 11 / 100)
	if math.Abs(watts-11*wantPer) > 1e-9 {
		t.Errorf("watts = %v, want %v", watts, 11*wantPer)
	}
}

func TestProvisionErrors(t *testing.T) {
	m := XeonLike()
	if _, _, err := Provision(m, 0, 100); err == nil {
		t.Error("zero per-server QPS accepted")
	}
	if _, _, err := Provision(m, 100, 0); err == nil {
		t.Error("zero target QPS accepted")
	}
	bad := Model{Name: "bad", IdleWatts: 200, PeakWatts: 100}
	if _, _, err := Provision(bad, 100, 100); err == nil {
		t.Error("inverted model accepted")
	}
}

// Property: power is monotone in utilization and bounded by [idle, peak].
func TestPowerPropertyBounded(t *testing.T) {
	f := func(idleRaw, spanRaw uint16, u1, u2 float64) bool {
		m := Model{
			Name:      "p",
			IdleWatts: float64(idleRaw),
			PeakWatts: float64(idleRaw) + float64(spanRaw),
		}
		if math.IsNaN(u1) || math.IsNaN(u2) {
			return true
		}
		p1, p2 := m.Power(u1), m.Power(u2)
		if p1 < m.IdleWatts || p1 > m.PeakWatts {
			return false
		}
		if u1 <= u2 && p1 > p2+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScaleFrequency(t *testing.T) {
	m := Model{Name: "m", IdleWatts: 100, PeakWatts: 300}
	half := m.ScaleFrequency(0.5)
	// Dynamic 200W scales by 0.125: peak = 100 + 25.
	if half.IdleWatts != 100 || half.PeakWatts != 125 {
		t.Errorf("half = %+v", half)
	}
	if m.ScaleFrequency(1).PeakWatts != 300 {
		t.Error("nominal frequency should not change peak")
	}
	over := m.ScaleFrequency(1.2)
	if over.PeakWatts <= 300 {
		t.Error("overclocking should raise peak power")
	}
	if m.ScaleFrequency(0).PeakWatts != 300 {
		t.Error("degenerate frequency should fall back to nominal")
	}
}
