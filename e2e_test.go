package websearchbench

// End-to-end integration tests across subsystem boundaries: the flows a
// downstream user strings together (index to disk and back, incremental
// writing, trace replay against a live HTTP cluster).

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"websearchbench/internal/cluster"
	"websearchbench/internal/corpus"
	"websearchbench/internal/index"
	"websearchbench/internal/loadgen"
	"websearchbench/internal/partition"
	"websearchbench/internal/search"
	"websearchbench/internal/workload"
)

func smallCorpusCfg() corpus.Config {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 400
	cfg.VocabSize = 1500
	cfg.MeanBodyTerms = 40
	return cfg
}

// Build an index, write it to disk, read it back, and verify queries
// return identical results — the indexer -> searchd handoff.
func TestE2EIndexFileRoundTrip(t *testing.T) {
	cfg := smallCorpusCfg()
	seg, err := index.BuildFromCorpus(cfg, index.WithPositions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := index.ReadSegment(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	s1 := search.NewSearcher(seg, search.DefaultOptions())
	s2 := search.NewSearcher(loaded, search.DefaultOptions())
	gen, _ := workload.NewGenerator(workload.DefaultConfig(), corpus.NewVocabulary(cfg.VocabSize))
	for _, q := range gen.Generate(100) {
		a := s1.ParseAndSearch(q.Text, q.Mode)
		b := s2.ParseAndSearch(q.Text, q.Mode)
		if !reflect.DeepEqual(a.Hits, b.Hits) {
			t.Fatalf("query %q differs after disk round trip", q.Text)
		}
	}
	// Phrases survive the round trip too (positions preserved).
	title := loaded.Doc(0).Title
	res := s2.ParseAndSearch(`"`+title+`"`, search.ModeOr)
	if len(res.Hits) == 0 {
		t.Errorf("phrase %q matched nothing after round trip", title)
	}
}

// Incremental writing + compaction yields the same search results as a
// one-shot build.
func TestE2EIncrementalIndexing(t *testing.T) {
	cfg := smallCorpusCfg()
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := index.NewBuilder()
	w := index.NewWriter(64)
	gen.GenerateFunc(func(d corpus.Document) {
		one.AddCorpusDoc(d)
		w.AddDocument(d.Title, d.Body, d.URL, d.Quality)
	})
	direct := one.Finalize()
	merged, err := w.Compact()
	if err != nil {
		t.Fatal(err)
	}
	s1 := search.NewSearcher(direct, search.DefaultOptions())
	s2 := search.NewSearcher(merged, search.DefaultOptions())
	qgen, _ := workload.NewGenerator(workload.DefaultConfig(), corpus.NewVocabulary(cfg.VocabSize))
	for _, q := range qgen.Generate(80) {
		a := s1.ParseAndSearch(q.Text, q.Mode)
		b := s2.ParseAndSearch(q.Text, q.Mode)
		if !reflect.DeepEqual(a.Hits, b.Hits) {
			t.Fatalf("query %q: incremental index differs from direct build", q.Text)
		}
	}
}

// Replay a timed trace against a live loopback cluster with a caching
// front-end: the full production-shaped pipeline.
func TestE2ETraceReplayOverCluster(t *testing.T) {
	cfg := smallCorpusCfg()
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := partition.NewBuilder(2, partition.RoundRobin, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen.GenerateFunc(func(d corpus.Document) { b.AddCorpusDoc(d) })
	node := cluster.NewNode("n0", b.Finalize(), search.Options{TopK: 10}, true)
	addr, err := node.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	fe, err := cluster.NewFrontend([]string{"http://" + addr}, 10)
	if err != nil {
		t.Fatal(err)
	}
	fe.EnableCache(64)
	feAddr, err := fe.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	qgen, err := workload.NewGenerator(workload.DefaultConfig(), gen.Vocabulary())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := qgen.GenerateTimed(150, 1500, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.RunReplay(loadgen.ReplayConfig{
		QoS: loadgen.QoS{Percentile: 90, Target: time.Second},
	}, trace, cluster.NewClient("http://"+feAddr, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Errorf("Completed = %d, want 150", res.Completed)
	}
	if res.Errors != 0 {
		t.Errorf("Errors = %d", res.Errors)
	}
	// The Zipf stream repeats queries, so the front-end cache must see
	// hits.
	if fe.CacheHitRate() <= 0 {
		t.Error("front-end cache saw no hits on a Zipf stream")
	}
}
