// Package websearchbench is a from-scratch reproduction of the web search
// benchmark characterized by Hadjilambrou, Kleanthous and Sazeides
// (ISPASS 2015): a complete search engine (analyzer, compressed inverted
// index, BM25 top-k retrieval with MaxScore pruning), intra-server index
// partitioning, a distributed front-end/index-node tier, a Faban-style
// load driver, and a calibrated discrete-event server simulator used for
// the paper's partitioning and low-power-server studies.
//
// This file is the high-level facade: build an engine over a synthetic
// web corpus and search it. The full machinery lives under internal/
// (see DESIGN.md for the map) and the paper's evaluation is regenerated
// by cmd/benchrunner.
package websearchbench

import (
	"fmt"
	"sync"

	"websearchbench/internal/corpus"
	"websearchbench/internal/index"
	"websearchbench/internal/live"
	"websearchbench/internal/partition"
	"websearchbench/internal/qcache"
	"websearchbench/internal/search"
	"websearchbench/internal/search/exec"
	"websearchbench/internal/textproc"
)

// Config configures an Engine.
type Config struct {
	// Docs is the synthetic corpus size (default 20000).
	Docs int
	// VocabSize is the number of distinct terms (default 30000).
	VocabSize int
	// Seed makes the corpus reproducible (default 1).
	Seed int64
	// Partitions is the intra-server partition count (default 1).
	Partitions int
	// Parallel searches partitions (or, with Live, segments) with
	// concurrent workers on the process-wide bounded search executor.
	Parallel bool
	// ExecWorkers resizes the process-wide search executor that Parallel
	// engines share (default GOMAXPROCS). It is a process-level knob:
	// setting it on one engine affects every parallel searcher in the
	// process.
	ExecWorkers int
	// IndependentPruning disables cross-partition threshold sharing, so
	// every partition prunes against only its local top-k heap — the
	// pre-sharing behavior, kept for measurement. Results are identical
	// either way; sharing only reduces postings scanned.
	IndependentPruning bool
	// TopK is the number of results per query (default 10).
	TopK int
	// GlobalStats enables distributed-IDF scoring so results are
	// identical regardless of the partition count.
	GlobalStats bool
	// Conjunctive makes Search require all query terms (AND semantics).
	Conjunctive bool
	// Positions stores term positions in the index, enabling quoted
	// phrase queries ("tail latency").
	Positions bool
	// CacheSize, when positive, adds an LRU result cache in front of the
	// engine: repeated queries (which dominate real web streams) are
	// answered without touching the index. With Live the cache is
	// generation-stamped: every published mutation batch starts a new
	// generation, so a result cached before a delete is never served
	// after it.
	CacheSize int
	// Live routes the engine through a near-real-time mutable index
	// (internal/live) seeded with the synthetic corpus: Add, Update and
	// Delete become available and are promptly visible to Search. Live
	// indexes do not store positions, so it cannot be combined with
	// Positions, and the Partitions/GlobalStats knobs do not apply.
	Live bool
	// LiveConfig tunes the live index when Live is set; the zero value
	// selects the live package's defaults.
	LiveConfig live.Config
}

// Result is one search hit.
type Result struct {
	URL     string
	Title   string
	Snippet string
	// Highlighted is the snippet with query terms wrapped in <b> tags.
	Highlighted string
	Score       float64
}

// Engine is an in-process web search engine over a partitioned index.
// It is safe for concurrent use.
type Engine struct {
	cfg      Config
	idx      *partition.Index
	searcher *partition.Searcher
	mode     search.Mode
	cache    *qcache.Cache[[]Result]
	// live and gcache replace idx/searcher/cache when Config.Live is set:
	// the mutable index plus a generation-stamped result cache keyed by
	// the snapshot generation each result was computed against.
	live   *live.Index
	gcache *qcache.Generational[[]Result]
	// analyzer is stateless and shared across queries, so the facade
	// does not rebuild the stopword set per search.
	analyzer *textproc.Analyzer
}

// New builds an Engine: it generates the synthetic corpus and indexes it
// into the configured number of partitions.
func New(cfg Config) (*Engine, error) {
	// Zero means "use the default"; negative values are configuration
	// errors rather than silently repaired.
	if cfg.Docs < 0 || cfg.VocabSize < 0 || cfg.Partitions < 0 || cfg.TopK < 0 {
		return nil, fmt.Errorf("websearchbench: negative config value in %+v", cfg)
	}
	if cfg.Docs == 0 {
		cfg.Docs = 20000
	}
	if cfg.VocabSize == 0 {
		cfg.VocabSize = 30000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.Docs
	ccfg.VocabSize = cfg.VocabSize
	ccfg.Seed = cfg.Seed
	if cfg.ExecWorkers > 0 {
		exec.SetDefaultWorkers(cfg.ExecWorkers)
	}
	if cfg.Live {
		return newLive(cfg, ccfg)
	}
	var bopts []index.BuilderOption
	if cfg.Positions {
		bopts = append(bopts, index.WithPositions())
	}
	idx, err := partition.Build(ccfg, cfg.Partitions, partition.RoundRobin, bopts...)
	if err != nil {
		return nil, fmt.Errorf("websearchbench: %w", err)
	}
	opts := search.Options{TopK: cfg.TopK, UseMaxScore: true}
	if cfg.GlobalStats {
		opts.Stats = partition.GlobalStats(idx)
	}
	mode := search.ModeOr
	if cfg.Conjunctive {
		mode = search.ModeAnd
	}
	e := &Engine{
		cfg:      cfg,
		idx:      idx,
		searcher: partition.NewSearcher(idx, opts, cfg.Parallel),
		mode:     mode,
		analyzer: textproc.NewAnalyzer(),
	}
	if cfg.IndependentPruning {
		e.searcher.SetSharedPruning(false)
	}
	if cfg.CacheSize > 0 {
		e.cache = qcache.New[[]Result](cfg.CacheSize)
	}
	return e, nil
}

// newLive builds a live-mode engine: the synthetic corpus is streamed
// into a mutable live index (keyed by URL) instead of immutable
// partitions.
func newLive(cfg Config, ccfg corpus.Config) (*Engine, error) {
	if cfg.Positions {
		return nil, fmt.Errorf("websearchbench: Live does not support Positions (live segments carry no positional postings)")
	}
	gen, err := corpus.NewGenerator(ccfg)
	if err != nil {
		return nil, fmt.Errorf("websearchbench: %w", err)
	}
	lcfg := cfg.LiveConfig
	lcfg.Parallel = lcfg.Parallel || cfg.Parallel
	seedRefresh := lcfg.RefreshEvery
	// Seeding publishes once at the end, not once per document.
	lcfg.RefreshEvery = 1 << 30
	li := live.NewIndex(lcfg)
	gen.GenerateFunc(func(d corpus.Document) {
		li.Add(d.URL, d.Title, d.Body, d.Quality)
	})
	li.SetRefreshEvery(seedRefresh)
	li.Refresh()
	mode := search.ModeOr
	if cfg.Conjunctive {
		mode = search.ModeAnd
	}
	e := &Engine{cfg: cfg, live: li, mode: mode, analyzer: textproc.NewAnalyzer()}
	if cfg.CacheSize > 0 {
		e.gcache = qcache.NewGenerational[[]Result](cfg.CacheSize)
	}
	return e, nil
}

// Search evaluates a free-text query and returns the ranked results.
func (e *Engine) Search(query string) []Result {
	if e.live != nil {
		return e.searchLive(query)
	}
	if e.cache != nil {
		if cached, ok := e.cache.Get(query); ok {
			return cached
		}
	}
	q := search.ParseQuery(e.analyzer, query, e.mode)
	res := e.searcher.Search(q)
	// Highlighting matches loose terms and phrase members alike; without
	// phrases the parsed terms are used as-is.
	highlightTerms := q.Terms
	if len(q.Phrases) > 0 {
		highlightTerms = append([]string(nil), q.Terms...)
		for _, p := range q.Phrases {
			highlightTerms = append(highlightTerms, p...)
		}
	}
	out := make([]Result, 0, len(res.Hits))
	for _, h := range res.Hits {
		doc := e.idx.Doc(h.Doc)
		snip := search.MakeSnippet(e.analyzer, doc.Snippet, highlightTerms, 0)
		out = append(out, Result{
			URL:         doc.URL,
			Title:       doc.Title,
			Snippet:     doc.Snippet,
			Highlighted: snip.HTML(),
			Score:       h.Score,
		})
	}
	if e.cache != nil {
		e.cache.Put(query, out)
	}
	return out
}

// searchLive answers a query from the live index under one acquired
// snapshot. The result cache is keyed by the snapshot's generation, so a
// result computed before any later mutation batch can never be replayed
// against the newer index state.
func (e *Engine) searchLive(query string) []Result {
	snap := e.live.Acquire()
	defer snap.Release()
	if e.gcache != nil {
		if cached, ok := e.gcache.GetAt(snap.Generation(), query); ok {
			return cached
		}
	}
	q := search.ParseQuery(e.analyzer, query, e.mode)
	hp := liveHitsPool.Get().(*[]live.Hit)
	hits := snap.SearchInto(q, e.cfg.TopK, (*hp)[:0])
	out := make([]Result, 0, len(hits))
	for _, h := range hits {
		snip := search.MakeSnippet(e.analyzer, h.Doc.Snippet, q.Terms, 0)
		out = append(out, Result{
			URL:         h.Doc.URL,
			Title:       h.Doc.Title,
			Snippet:     h.Doc.Snippet,
			Highlighted: snip.HTML(),
			Score:       h.Score,
		})
	}
	if e.gcache != nil {
		e.gcache.PutAt(snap.Generation(), query, out)
	}
	// Clear the pooled hits before returning them: live.Hit pins keys and
	// stored documents, which a pool must not retain across queries.
	for i := range hits {
		hits[i] = live.Hit{}
	}
	*hp = hits[:0]
	liveHitsPool.Put(hp)
	return out
}

// liveHitsPool recycles the per-query live hit buffer the facade hands
// to Snapshot.SearchInto, keeping the serving path allocation-free up to
// the Results that escape to the caller.
var liveHitsPool = sync.Pool{New: func() any { return new([]live.Hit) }}

// mustLive guards the mutation API against static engines.
func (e *Engine) mustLive() *live.Index {
	if e.live == nil {
		panic("websearchbench: engine not configured with Live")
	}
	return e.live
}

// Add ingests (or replaces) a document in a live engine. The key doubles
// as the result URL. It panics on an engine built without Config.Live.
// The error is always nil for in-memory engines; with a durable sink it
// reports journaling or flush-persistence failures.
func (e *Engine) Add(key, title, body string, quality float64) error {
	return e.mustLive().Add(key, title, body, quality)
}

// Update replaces the document stored under key in a live engine.
func (e *Engine) Update(key, title, body string, quality float64) error {
	return e.mustLive().Update(key, title, body, quality)
}

// Delete removes a document from a live engine, reporting whether the
// key existed.
func (e *Engine) Delete(key string) (bool, error) { return e.mustLive().Delete(key) }

// Live exposes the underlying live index (nil for static engines).
func (e *Engine) Live() *live.Index { return e.live }

// LiveStats reports the live index's shape; ok is false for static
// engines.
func (e *Engine) LiveStats() (stats live.Stats, ok bool) {
	if e.live == nil {
		return live.Stats{}, false
	}
	return e.live.Stats(), true
}

// Close releases background resources (the live index's merge
// scheduler). It is a no-op for static engines.
func (e *Engine) Close() {
	if e.live != nil {
		e.live.Close()
	}
}

// CacheHitRate reports the engine result cache's lifetime hit rate (0
// when no cache is configured).
func (e *Engine) CacheHitRate() float64 {
	if e.gcache != nil {
		return e.gcache.HitRate()
	}
	if e.cache == nil {
		return 0
	}
	return e.cache.HitRate()
}

// NumDocs returns the number of indexed (live) documents.
func (e *Engine) NumDocs() int {
	if e.live != nil {
		return int(e.live.Stats().LiveDocs)
	}
	return e.idx.NumDocs()
}

// NumPartitions returns the intra-server partition count (1 for live
// engines, whose sharding is segment-based rather than partition-based).
func (e *Engine) NumPartitions() int {
	if e.live != nil {
		return 1
	}
	return e.idx.NumPartitions()
}

// Index exposes the underlying partitioned index for advanced use (the
// examples use it to serve HTTP nodes). It is nil for live engines.
func (e *Engine) Index() *partition.Index { return e.idx }
