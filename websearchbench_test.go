package websearchbench

import (
	"strings"
	"testing"
)

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Docs == 0 {
		cfg.Docs = 500
	}
	if cfg.VocabSize == 0 {
		cfg.VocabSize = 2000
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineDefaults(t *testing.T) {
	e := newTestEngine(t, Config{})
	if e.NumDocs() != 500 || e.NumPartitions() != 1 {
		t.Errorf("docs=%d partitions=%d", e.NumDocs(), e.NumPartitions())
	}
}

func TestEngineSearch(t *testing.T) {
	e := newTestEngine(t, Config{Partitions: 4})
	// Search for a word that certainly exists: take one from a stored
	// doc's title.
	title := e.Index().Doc(0).Title
	term := strings.Fields(title)[0]
	results := e.Search(term)
	if len(results) == 0 {
		t.Fatalf("no results for %q", term)
	}
	if len(results) > 10 {
		t.Errorf("%d results, default TopK is 10", len(results))
	}
	for i, r := range results {
		if r.URL == "" || r.Title == "" {
			t.Errorf("result %d missing fields: %+v", i, r)
		}
		if i > 0 && r.Score > results[i-1].Score {
			t.Error("results not sorted")
		}
	}
}

func TestEngineGlobalStatsPartitionInvariance(t *testing.T) {
	e1 := newTestEngine(t, Config{GlobalStats: true})
	e8 := newTestEngine(t, Config{Partitions: 8, GlobalStats: true})
	term := strings.Fields(e1.Index().Doc(0).Title)[0]
	r1, r8 := e1.Search(term), e8.Search(term)
	if len(r1) != len(r8) {
		t.Fatalf("partition counts changed results: %d vs %d", len(r1), len(r8))
	}
	for i := range r1 {
		if r1[i].URL != r8[i].URL {
			t.Errorf("result %d: %s vs %s", i, r1[i].URL, r8[i].URL)
		}
	}
}

func TestEngineConjunctive(t *testing.T) {
	e := newTestEngine(t, Config{Conjunctive: true})
	if got := e.Search("zzzznope alsonothere"); len(got) != 0 {
		t.Errorf("AND of absent terms returned %d results", len(got))
	}
}

func TestEngineCache(t *testing.T) {
	e := newTestEngine(t, Config{CacheSize: 8})
	q := e.Index().Doc(0).Title
	first := e.Search(q)
	second := e.Search(q)
	if len(first) != len(second) {
		t.Fatalf("cached result differs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cached result %d differs", i)
		}
	}
	if e.CacheHitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", e.CacheHitRate())
	}
	if newTestEngine(t, Config{}).CacheHitRate() != 0 {
		t.Error("uncached engine hit rate should be 0")
	}
}

func TestEnginePhraseQueries(t *testing.T) {
	e := newTestEngine(t, Config{Positions: true})
	title := e.Index().Doc(0).Title
	words := strings.Fields(title)
	if len(words) < 2 {
		t.Skip("doc 0 title too short for a phrase")
	}
	phrase := `"` + words[0] + " " + words[1] + `"`
	results := e.Search(phrase)
	if len(results) == 0 {
		t.Fatalf("phrase %s matched nothing", phrase)
	}
	// The doc whose title contains the phrase must be among the hits.
	found := false
	for _, r := range results {
		if r.Title == title {
			found = true
		}
	}
	if !found {
		t.Errorf("source doc missing from phrase results for %s", phrase)
	}
	// Phrases on a non-positional engine return nothing rather than
	// wrong results.
	plain := newTestEngine(t, Config{})
	if got := plain.Search(phrase); len(got) != 0 {
		t.Errorf("non-positional engine matched a phrase: %d hits", len(got))
	}
}

func TestEngineInvalidConfig(t *testing.T) {
	if _, err := New(Config{Docs: 10, VocabSize: -5}); err == nil {
		t.Error("negative vocab accepted")
	}
}

func TestEngineLive(t *testing.T) {
	e := newTestEngine(t, Config{Live: true})
	defer e.Close()
	if e.NumDocs() != 500 {
		t.Fatalf("live engine seeded %d docs, want 500", e.NumDocs())
	}

	e.Add("doc:new", "zyzzogeton studies", "a body about zyzzogeton behavior", 0.9)
	res := e.Search("zyzzogeton")
	if len(res) != 1 || res[0].URL != "doc:new" {
		t.Fatalf("fresh add not searchable: %+v", res)
	}

	e.Update("doc:new", "quokka studies", "a body about quokka behavior", 0.9)
	if res := e.Search("zyzzogeton"); len(res) != 0 {
		t.Fatalf("superseded version still matches: %+v", res)
	}
	if res := e.Search("quokka"); len(res) != 1 || res[0].URL != "doc:new" {
		t.Fatalf("updated doc not searchable: %+v", res)
	}

	if ok, _ := e.Delete("doc:new"); !ok {
		t.Fatal("Delete returned false for a live key")
	}
	if res := e.Search("quokka"); len(res) != 0 {
		t.Fatalf("deleted doc still matches: %+v", res)
	}

	st, ok := e.LiveStats()
	if !ok || st.LiveDocs != 500 {
		t.Fatalf("LiveStats = %+v, %v", st, ok)
	}
}

// TestEngineLiveStaleCache is the cache-coherence acceptance test: a
// query result cached before a delete must not be served after it.
func TestEngineLiveStaleCache(t *testing.T) {
	e := newTestEngine(t, Config{Live: true, CacheSize: 64})
	defer e.Close()

	e.Add("doc:target", "xylographic survey", "a body about xylographic methods", 0.5)
	first := e.Search("xylographic")
	if len(first) != 1 || first[0].URL != "doc:target" {
		t.Fatalf("priming query returned %+v", first)
	}
	// Same query again: served from cache (hit rate goes positive).
	e.Search("xylographic")
	if e.CacheHitRate() == 0 {
		t.Fatal("repeat query did not hit the cache")
	}

	_, _ = e.Delete("doc:target")
	after := e.Search("xylographic")
	if len(after) != 0 {
		t.Fatalf("query cached before the delete was served after it: %+v", after)
	}

	// And the inverse: a cached empty result must not mask a later add.
	e.Add("doc:target2", "xylographic revival", "more xylographic material", 0.5)
	revived := e.Search("xylographic")
	if len(revived) != 1 || revived[0].URL != "doc:target2" {
		t.Fatalf("cached empty result masked a later add: %+v", revived)
	}
}

func TestEngineLiveRejectsPositions(t *testing.T) {
	if _, err := New(Config{Docs: 10, VocabSize: 100, Live: true, Positions: true}); err == nil {
		t.Fatal("Live+Positions config accepted")
	}
}
