package websearchbench_test

// Godoc examples for the public facade. They run as tests, so the
// documented snippets are guaranteed to stay correct.

import (
	"fmt"
	"strings"

	websearchbench "websearchbench"
)

// ExampleNew builds a small engine and runs one query.
func ExampleNew() {
	engine, err := websearchbench.New(websearchbench.Config{
		Docs:      300,
		VocabSize: 1000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("docs:", engine.NumDocs())
	fmt.Println("partitions:", engine.NumPartitions())
	// Output:
	// docs: 300
	// partitions: 1
}

// ExampleEngine_Search shows ranked retrieval: the document whose title
// we query comes back first.
func ExampleEngine_Search() {
	engine, err := websearchbench.New(websearchbench.Config{
		Docs:       300,
		VocabSize:  1000,
		Partitions: 4,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	title := engine.Index().Doc(0).Title
	results := engine.Search(title)
	fmt.Println("top hit is doc 0:", results[0].Title == title)
	// Output:
	// top hit is doc 0: true
}

// ExampleEngine_Search_phrases shows quoted phrase queries over a
// positional index.
func ExampleEngine_Search_phrases() {
	engine, err := websearchbench.New(websearchbench.Config{
		Docs:      300,
		VocabSize: 1000,
		Positions: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Find a document whose title has at least two words to quote.
	var words []string
	for d := int32(0); d < 300; d++ {
		words = strings.Fields(engine.Index().Doc(d).Title)
		if len(words) >= 2 {
			break
		}
	}
	phrase := `"` + words[0] + " " + words[1] + `"`
	results := engine.Search(phrase)
	fmt.Println("phrase matched:", len(results) > 0)
	// Output:
	// phrase matched: true
}

// ExampleEngine_Add shows the live (near-real-time) mode: documents
// added, updated or deleted through the facade become searchable
// immediately, with no rebuild.
func ExampleEngine_Add() {
	engine, err := websearchbench.New(websearchbench.Config{
		Docs:      300,
		VocabSize: 1000,
		Live:      true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer engine.Close()

	engine.Add("doc:breaking", "solar eclipse timing", "the eclipse crosses the region at noon", 0.9)
	results := engine.Search("eclipse")
	fmt.Println("found after add:", len(results) == 1 && results[0].URL == "doc:breaking")

	_, _ = engine.Delete("doc:breaking")
	fmt.Println("found after delete:", len(engine.Search("eclipse")) > 0)
	// Output:
	// found after add: true
	// found after delete: false
}

// ExampleEngine_CacheHitRate shows the result cache absorbing a repeat.
func ExampleEngine_CacheHitRate() {
	engine, err := websearchbench.New(websearchbench.Config{
		Docs:      300,
		VocabSize: 1000,
		CacheSize: 16,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	q := engine.Index().Doc(0).Title
	engine.Search(q) // miss
	engine.Search(q) // hit
	fmt.Printf("hit rate: %.0f%%\n", engine.CacheHitRate()*100)
	// Output:
	// hit rate: 50%
}
