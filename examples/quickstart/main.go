// Quickstart: build an in-process web search engine over the synthetic
// corpus and run a few queries against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	websearchbench "websearchbench"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building a 5,000-document index in 4 partitions...")
	start := time.Now()
	engine, err := websearchbench.New(websearchbench.Config{
		Docs:        5000,
		VocabSize:   10000,
		Partitions:  4,
		Parallel:    true,
		GlobalStats: true, // identical ranking regardless of partitioning
		Positions:   true, // enable quoted phrase queries
		CacheSize:   128,  // LRU result cache for repeated queries
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d docs across %d partitions in %v\n\n",
		engine.NumDocs(), engine.NumPartitions(), time.Since(start).Round(time.Millisecond))

	// Query with words we know exist: titles of stored documents.
	queries := []string{
		engine.Index().Doc(0).Title,
		engine.Index().Doc(42).Title,
		strings.Fields(engine.Index().Doc(100).Title)[0],
	}
	for _, q := range queries {
		begin := time.Now()
		results := engine.Search(q)
		took := time.Since(begin)
		fmt.Printf("query %q (%d hits, %v):\n", q, len(results), took.Round(time.Microsecond))
		for i, r := range results {
			if i >= 3 {
				break
			}
			fmt.Printf("  %d. [%.3f] %s\n     %s\n     %s\n", i+1, r.Score, r.Title, r.URL, r.Highlighted)
		}
		fmt.Println()
	}

	// Quoted phrases require adjacent terms (positional index).
	phrase := `"` + engine.Index().Doc(7).Title + `"`
	results := engine.Search(phrase)
	fmt.Printf("phrase query %s: %d hits\n", phrase, len(results))

	// Repeated queries hit the result cache.
	begin := time.Now()
	engine.Search(queries[0])
	fmt.Printf("repeated query served in %v (cache hit rate %.0f%%)\n",
		time.Since(begin).Round(time.Microsecond), engine.CacheHitRate()*100)
}
