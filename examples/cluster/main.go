// Cluster: the benchmark's full serving architecture in one process —
// index-serving nodes behind a scatter/gather front-end, all over real
// loopback HTTP, driven by the Faban-style closed-loop load generator
// with a QoS check.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"websearchbench/internal/cluster"
	"websearchbench/internal/corpus"
	"websearchbench/internal/loadgen"
	"websearchbench/internal/partition"
	"websearchbench/internal/search"
	"websearchbench/internal/workload"
)

func main() {
	log.SetFlags(0)

	const nodes = 3
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = 3000
	ccfg.VocabSize = 8000
	ccfg.MeanBodyTerms = 100

	fmt.Printf("building a %d-node cluster (each node 2 intra-server partitions)...\n", nodes)
	gen, err := corpus.NewGenerator(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	builders := make([]*partition.Builder, nodes)
	for i := range builders {
		builders[i], err = partition.NewBuilder(2, partition.RoundRobin, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	i := 0
	gen.GenerateFunc(func(d corpus.Document) {
		builders[i%nodes].AddCorpusDoc(d)
		i++
	})

	urls := make([]string, nodes)
	for j, b := range builders {
		node := cluster.NewNode(fmt.Sprintf("node-%d", j), b.Finalize(),
			search.Options{TopK: 10}, true)
		addr, err := node.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		urls[j] = "http://" + addr
		fmt.Printf("  %s on %s\n", fmt.Sprintf("node-%d", j), urls[j])
	}
	fe, err := cluster.NewFrontend(urls, 10)
	if err != nil {
		log.Fatal(err)
	}
	feAddr, err := fe.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer fe.Close()
	fmt.Printf("  frontend on http://%s\n\n", feAddr)

	wgen, err := workload.NewGenerator(workload.DefaultConfig(), gen.Vocabulary())
	if err != nil {
		log.Fatal(err)
	}
	stream := wgen.Generate(2000)

	fmt.Println("driving the cluster: 4 closed-loop clients, 5ms think time, 3s window")
	res, err := loadgen.RunClosedLoop(loadgen.ClosedLoopConfig{
		Clients:       4,
		MeanThinkTime: 5 * time.Millisecond,
		RampUp:        500 * time.Millisecond,
		Measure:       3 * time.Second,
		QoS:           loadgen.QoS{Percentile: 90, Target: 100 * time.Millisecond},
		Seed:          1,
	}, stream, cluster.NewClient("http://"+feAddr, 10))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted %d queries (%d errors) at %.0f qps\n",
		res.Completed, res.Errors, res.Throughput)
	fmt.Printf("latency: %s\n", res.Latency)
	status := "MET"
	if !res.QoSMet {
		status = "VIOLATED"
	}
	fmt.Printf("QoS (90%% <= 100ms): %s — %.1f%% of queries under target\n",
		status, res.QoSFraction*100)
}
