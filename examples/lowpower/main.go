// Lowpower: the paper's wimpy-versus-brawny study at example scale. A
// low-power (Atom-like) server is several times slower per core than a
// conventional (Xeon-like) server — but given enough intra-server
// partitioning its response times converge, and it wins on energy.
//
//	go run ./examples/lowpower
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"websearchbench/internal/experiments"
	"websearchbench/internal/power"
	"websearchbench/internal/simsrv"
)

func main() {
	log.SetFlags(0)

	ctx := experiments.NewContext(os.Stdout, 0.1)
	fmt.Println("calibrating the server simulator from real engine measurements...")
	ctx.Calibration()

	xeon, atom := simsrv.XeonLike(), simsrv.AtomLike()
	// A load both server classes can sustain at any partition count.
	qps := 0.4 * ctx.EffectiveCapacity(atom, 16)

	fmt.Printf("\nresponse time at %.0f qps:\n", qps)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "partitions\txeon-like mean\tatom-like mean\tatom/xeon\n")
	var xeonBase float64
	for _, parts := range []int{1, 2, 4, 8, 16} {
		run := func(m simsrv.ServerModel) float64 {
			cfg := ctx.SimulatorConfig(m, parts, int64(parts))
			cfg.Open = &simsrv.OpenLoop{RateQPS: qps}
			st, err := simsrv.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			return st.Latency.Mean.Seconds()
		}
		x, a := run(xeon), run(atom)
		if parts == 1 {
			xeonBase = x
		}
		fmt.Fprintf(w, "%d\t%.1fms\t%.1fms\t%.2fx\n", parts, x*1e3, a*1e3, a/xeonBase)
	}
	w.Flush()

	xp, ap := power.XeonLike(), power.AtomLike()
	fmt.Printf("\npower at 50%% utilization: %s %.0fW vs %s %.0fW (%.1fx)\n",
		xp.Name, xp.Power(0.5), ap.Name, ap.Power(0.5), xp.Power(0.5)/ap.Power(0.5))
	fmt.Println("with enough partitions the slow cores hide behind parallelism,")
	fmt.Println("and the low-power class serves the same latency for a fraction")
	fmt.Println("of the power — the abstract's headline claim.")
}
