// Tailatscale: why per-server tail latency is the number that matters in
// web search, and what hedged requests buy. A front-end fans each query
// out to every shard and waits for the slowest response, so a node-level
// p99 becomes a cluster-level commonplace; replicating shards and hedging
// slow dispatches claws the tail back.
//
//	go run ./examples/tailatscale
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"websearchbench/internal/experiments"
	"websearchbench/internal/simsrv"
)

func main() {
	log.SetFlags(0)

	ctx := experiments.NewContext(os.Stdout, 0.1)
	fmt.Println("calibrating per-node service demands from the real engine...")
	cal := ctx.Calibration()
	node := simsrv.XeonLike()
	qps := 0.4 * ctx.EffectiveCapacity(node, 1)

	base := simsrv.ClusterConfig{
		Node:               node,
		PartitionsPerNode:  1,
		Demands:            ctx.Demands(),
		NodeImbalanceCV:    0.1,
		PartitionOverhead:  cal.PartitionOverhead,
		MergeBase:          cal.MergeBase,
		MergePerPartition:  cal.MergePerPartition,
		ImbalanceCV:        cal.ImbalanceCV,
		ServerJitterProb:   0.05,
		ServerJitterFactor: 10,
		NetworkDelay:       0.0002,
		FrontendMerge:      cal.MergeBase,
		Open:               simsrv.OpenLoop{RateQPS: qps},
		Warmup:             5,
		Duration:           60,
		Seed:               7,
	}

	fmt.Printf("\n1. fan-out amplifies the tail (per-node load fixed at %.0f qps):\n", qps)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "shards\tmedian\tp99\n")
	for _, n := range []int{1, 4, 16, 64} {
		cfg := base
		cfg.Nodes = n
		st, err := simsrv.RunCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%v\t%v\n", n, st.Latency.P50, st.Latency.P99)
	}
	w.Flush()

	fmt.Println("\n2. hedged requests claw it back (16 shards, 2 replicas each):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tp99\thedge rate\n")
	for _, hedge := range []struct {
		name  string
		after float64
	}{
		{"no hedging", 0},
		{"hedge after 3x mean", 3 * ctx.MeanDemand()},
	} {
		cfg := base
		cfg.Nodes = 16
		cfg.Replicas = 2
		cfg.HedgeAfter = hedge.after
		st, err := simsrv.RunCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rate := 0.0
		if st.Completed > 0 {
			rate = float64(st.Hedged) / float64(st.Completed) / 16
		}
		fmt.Fprintf(w, "%s\t%v\t%.1f%%\n", hedge.name, st.Latency.P99, rate*100)
	}
	w.Flush()
	fmt.Println("\na small fraction of duplicated work removes the transiently slow")
	fmt.Println("servers from every query's critical path.")
}
