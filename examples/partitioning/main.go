// Partitioning: the paper's central study at example scale. First the
// real engine measures per-query work and fork-join span across partition
// counts, then the calibrated discrete-event server simulator shows what
// that does to tail latency under load.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"websearchbench/internal/experiments"
	"websearchbench/internal/simsrv"
)

func main() {
	log.SetFlags(0)

	// A reduced-scale experiment context: it builds the corpus, measures
	// real service times, and calibrates the simulator.
	ctx := experiments.NewContext(os.Stdout, 0.1)

	fmt.Println("== real engine: work vs span across partition counts ==")
	ctx.E12RealPartition()

	fmt.Println("\n== simulated server under load: the tail effect ==")
	server := simsrv.XeonLike()
	qps := 0.5 * ctx.EffectiveCapacity(server, 16)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "partitions\tmean\tp99\n")
	for _, parts := range []int{1, 2, 4, 8, 16} {
		cfg := ctx.SimulatorConfig(server, parts, int64(parts))
		cfg.Open = &simsrv.OpenLoop{RateQPS: qps}
		st, err := simsrv.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%v\t%v\n", parts, st.Latency.Mean, st.Latency.P99)
	}
	w.Flush()
	fmt.Println("\npartitioning shortens a slow query's critical path: the p99 falls")
	fmt.Println("steeply over the first few partitions, then overheads take over.")
}
