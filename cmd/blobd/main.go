// Command blobd is the S3-like object server for disaggregated segment
// storage: a flat key space of immutable blobs behind PUT/GET/DELETE
// plus ranged GETs, which is all the searcher-side block cache needs.
// Publishers (indexer -publish, a live searchd with -blob-publish)
// upload segments and manifests here; stateless searchers point
// -blob-store at it.
//
//	blobd -listen :9300 -dir /data/blobs
//
// With -dir the store survives restarts (objects are plain files,
// written atomically); without it blobs live in process memory — enough
// for tests and demos.
package main

import (
	"flag"
	"log"
	"net/http"

	"websearchbench/internal/blob"
)

func main() {
	listen := flag.String("listen", ":9300", "address to serve the object API on")
	dir := flag.String("dir", "", "backing directory (empty: in-memory, non-durable)")
	flag.Parse()

	var st blob.Store
	if *dir == "" {
		st = blob.NewMemStore()
		log.Printf("blobd: serving in-memory store on %s", *listen)
	} else {
		var err error
		st, err = blob.NewDirStore(*dir)
		if err != nil {
			log.Fatalf("blobd: %v", err)
		}
		log.Printf("blobd: serving %s on %s", *dir, *listen)
	}
	log.Fatal(http.ListenAndServe(*listen, blob.NewServer(st)))
}
