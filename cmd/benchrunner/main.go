// Command benchrunner regenerates every table and figure of the paper's
// reconstructed evaluation (E1..E24 plus the design ablations), printing
// each as a text table. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	benchrunner                    # full scale (~ a couple of minutes)
//	benchrunner -scale 0.1         # quick pass
//	benchrunner -only E7           # a single experiment
//	benchrunner -json results.json # also write machine-readable records
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"websearchbench/internal/experiments"
	"websearchbench/internal/search/exec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrunner: ")

	var (
		scale   = flag.Float64("scale", 1.0, "scale factor for corpus/queries/sim durations")
		only    = flag.String("only", "", "run a single experiment (E1..E24, ABL-1..ABL-8)")
		jsonO   = flag.String("json", "", "write the run's measurements to this file as a JSON array of records (see experiments.Record for the schema)")
		workers = flag.Int("exec-workers", 0, "bounded search executor workers for the parallel-search experiments (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *workers > 0 {
		exec.SetDefaultWorkers(*workers)
	}

	c := experiments.NewContext(os.Stdout, *scale)
	defer func() {
		if *jsonO == "" {
			return
		}
		if err := writeJSON(*jsonO, c.Records()); err != nil {
			log.Fatal(err)
		}
	}()
	if *only == "" {
		c.RunAll()
		return
	}
	steps := map[string]func(){
		"E1":    func() { c.E1Characterization() },
		"E2":    func() { c.E2Workload() },
		"E3":    func() { c.E3PhaseBreakdown() },
		"E4":    func() { c.E4ServiceTimeAnatomy() },
		"E5":    func() { c.E5LoadCurve() },
		"E6":    func() { c.E6Throughput() },
		"E7":    func() { c.E7PartitionTail() },
		"E8":    func() { c.E8PartitionThroughput() },
		"E9":    func() { c.E9CDF() },
		"E10":   func() { c.E10LowPower() },
		"E11":   func() { c.E11Energy() },
		"E12":   func() { c.E12RealPartition() },
		"E13":   func() { c.E13Cluster() },
		"E14":   func() { c.E14ResultCache() },
		"E15":   func() { c.E15DVFS() },
		"E16":   func() { c.E16TailAtScale() },
		"E17":   func() { c.E17Diurnal() },
		"E18":   func() { c.E18Hedging() },
		"E19":   func() { c.E19LiveFaults() },
		"E20":   func() { c.E20LiveIngest() },
		"E21":   func() { c.E21Replication() },
		"E22":   func() { c.E22Durability() },
		"E23":   func() { c.E23ParallelIndexing() },
		"E24":   func() { c.E24SharedExec() },
		"ABL-1": func() { c.AblationMaxScore() },
		"ABL-2": func() { c.AblationCompression() },
		"ABL-3": func() { c.AblationAssignment() },
		"ABL-4": func() { c.AblationTopK() },
		"ABL-5": func() { c.AblationScheduling() },
		"ABL-6": func() { c.AblationSkipLists() },
		"ABL-7": func() { c.AblationBlockMax() },
		"ABL-8": func() { c.AblationPackedCompression() },
	}
	run, ok := steps[*only]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid:", *only)
		for k := range steps {
			fmt.Fprintf(os.Stderr, " %s", k)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	run()
}

// writeJSON writes records to path as an indented JSON array. An empty
// run writes "[]", not "null", so consumers always get an array.
func writeJSON(path string, records []experiments.Record) error {
	if records == nil {
		records = []experiments.Record{}
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
