// Command loadgen drives a running front-end or node with the benchmark
// workload and reports latency, throughput and QoS — the Faban-driver
// role.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -clients 8 -think 100ms -measure 30s
//	loadgen -target http://127.0.0.1:8080 -open -rate 200 -measure 30s
//	loadgen -target http://127.0.0.1:8080 -replay trace.timed -speedup 2
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"os"

	"websearchbench/internal/cluster"
	"websearchbench/internal/corpus"
	"websearchbench/internal/loadgen"
	"websearchbench/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "service base URL")
		vocab    = flag.Int("vocab", 30000, "vocabulary size (must match the index)")
		clients  = flag.Int("clients", 8, "closed-loop client population")
		think    = flag.Duration("think", 100*time.Millisecond, "mean think time")
		open     = flag.Bool("open", false, "open-loop (Poisson) instead of closed-loop")
		rate     = flag.Float64("rate", 100, "open-loop arrival rate (qps)")
		rampUp   = flag.Duration("rampup", 2*time.Second, "warm-up window")
		measure  = flag.Duration("measure", 10*time.Second, "measurement window")
		qosPct   = flag.Float64("qos-pct", 90, "QoS percentile")
		qosTgt   = flag.Duration("qos-target", 500*time.Millisecond, "QoS response-time target")
		seed     = flag.Int64("seed", 7, "workload seed")
		nq       = flag.Int("queries", 5000, "query stream length")
		replay   = flag.String("replay", "", "timed trace file to replay (overrides open/closed modes)")
		speedup  = flag.Float64("speedup", 1, "replay time scaling")
		deadline = flag.Duration("deadline", 0, "per-query client deadline (0 = transport default)")
	)
	flag.Parse()

	backendQoS := loadgen.QoS{Percentile: *qosPct, Target: *qosTgt}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := workload.ReadTimedTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		replayClient := cluster.NewClient(*target, 10)
		replayClient.SetDeadline(*deadline)
		res, err := loadgen.RunReplay(loadgen.ReplayConfig{
			Speedup:    *speedup,
			SkipWarmup: *rampUp,
			QoS:        backendQoS,
		}, trace, replayClient)
		if err != nil {
			log.Fatal(err)
		}
		report(res, backendQoS)
		return
	}

	wcfg := workload.DefaultConfig()
	wcfg.Seed = *seed
	gen, err := workload.NewGenerator(wcfg, corpus.NewVocabulary(*vocab))
	if err != nil {
		log.Fatal(err)
	}
	stream := gen.Generate(*nq)
	backend := cluster.NewClient(*target, 10)
	backend.SetDeadline(*deadline)
	qos := backendQoS

	var res loadgen.Result
	if *open {
		res, err = loadgen.RunOpenLoop(loadgen.OpenLoopConfig{
			RateQPS: *rate, RampUp: *rampUp, Measure: *measure, QoS: qos, Seed: *seed,
		}, stream, backend)
	} else {
		res, err = loadgen.RunClosedLoop(loadgen.ClosedLoopConfig{
			Clients: *clients, MeanThinkTime: *think,
			RampUp: *rampUp, Measure: *measure, QoS: qos, Seed: *seed,
		}, stream, backend)
	}
	if err != nil {
		log.Fatal(err)
	}

	report(res, qos)
}

func report(res loadgen.Result, qos loadgen.QoS) {
	fmt.Printf("completed: %d (errors %d, degraded %d)\n", res.Completed, res.Errors, res.Degraded)
	fmt.Printf("throughput: %.1f qps\n", res.Throughput)
	fmt.Printf("latency: %s\n", res.Latency)
	status := "MET"
	if !res.QoSMet {
		status = "VIOLATED"
	}
	fmt.Printf("QoS p%.0f <= %v: %s (%.1f%% under target)\n",
		qos.Percentile, qos.Target, status, res.QoSFraction*100)
}
