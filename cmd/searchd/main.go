// Command searchd serves an index over HTTP: one index-serving node of
// the benchmark's cluster tier, with intra-server partitioning.
//
// Usage:
//
//	searchd -addr :8081 -docs 20000 -partitions 8 -parallel
//
// searchd builds its slice of the synthetic corpus in memory on startup
// (deterministic for a given seed), so multi-node clusters are started by
// giving each node its shard via -shard/-shards.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"websearchbench/internal/cluster"
	"websearchbench/internal/corpus"
	"websearchbench/internal/partition"
	"websearchbench/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("searchd: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:8081", "listen address")
		name     = flag.String("name", "node-0", "node name")
		docs     = flag.Int("docs", 20000, "corpus documents (whole collection)")
		vocab    = flag.Int("vocab", 30000, "vocabulary size")
		seed     = flag.Int64("seed", 1, "corpus seed")
		parts    = flag.Int("partitions", 4, "intra-server partitions")
		parallel = flag.Bool("parallel", true, "search partitions with parallel workers")
		shard    = flag.Int("shard", 0, "this node's shard number")
		shards   = flag.Int("shards", 1, "total index-serving nodes")
		topK     = flag.Int("topk", 10, "results per query")
	)
	flag.Parse()
	if *shard < 0 || *shards <= 0 || *shard >= *shards {
		log.Fatalf("invalid shard %d of %d", *shard, *shards)
	}

	cfg := corpus.DefaultConfig()
	cfg.NumDocs = *docs
	cfg.VocabSize = *vocab
	cfg.Seed = *seed
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := partition.NewBuilder(*parts, partition.RoundRobin, 0)
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	gen.GenerateFunc(func(d corpus.Document) {
		if i%*shards == *shard {
			b.AddCorpusDoc(d)
		}
		i++
	})
	idx := b.Finalize()

	node := cluster.NewNode(*name, idx, search.Options{TopK: *topK}, *parallel)
	bound, err := node.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s serving %d docs in %d partitions on http://%s (shard %d/%d)\n",
		*name, idx.NumDocs(), idx.NumPartitions(), bound, *shard, *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := node.Close(); err != nil {
		log.Fatal(err)
	}
}
