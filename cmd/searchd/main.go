// Command searchd serves an index over HTTP: one index-serving node of
// the benchmark's cluster tier, with intra-server partitioning.
//
// Usage:
//
//	searchd -addr :8081 -docs 20000 -partitions 8 -parallel
//
// searchd builds its slice of the synthetic corpus in memory on startup
// (deterministic for a given seed), so multi-node clusters are started by
// giving each node its shard via -shard/-shards.
//
// For resilience experiments a node can injure itself with the -fault-*
// flags (deterministic latency/error/blackhole injection in front of the
// handler), letting a live cluster be tested against stragglers and
// failures without external tooling:
//
//	searchd -addr :8082 -shard 1 -shards 2 -fault-latency 50ms -fault-latency-prob 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"websearchbench/internal/cluster"
	"websearchbench/internal/cluster/resilience"
	"websearchbench/internal/corpus"
	"websearchbench/internal/partition"
	"websearchbench/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("searchd: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:8081", "listen address")
		name     = flag.String("name", "node-0", "node name")
		docs     = flag.Int("docs", 20000, "corpus documents (whole collection)")
		vocab    = flag.Int("vocab", 30000, "vocabulary size")
		seed     = flag.Int64("seed", 1, "corpus seed")
		parts    = flag.Int("partitions", 4, "intra-server partitions")
		parallel = flag.Bool("parallel", true, "search partitions with parallel workers")
		shard    = flag.Int("shard", 0, "this node's shard number")
		shards   = flag.Int("shards", 1, "total index-serving nodes")
		topK     = flag.Int("topk", 10, "results per query")
		drain    = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")

		// Fault injection, for resilience experiments against a live
		// node: searchd can make itself a straggler, an error source,
		// or a blackhole.
		faultLatency   = flag.Duration("fault-latency", 0, "injected latency per faulted request")
		faultLatProb   = flag.Float64("fault-latency-prob", 0, "probability of injecting latency")
		faultErrProb   = flag.Float64("fault-error-prob", 0, "probability of injecting a 503")
		faultBlackProb = flag.Float64("fault-blackhole-prob", 0, "probability of swallowing a request")
		faultSeed      = flag.Int64("fault-seed", 1, "fault-injection random seed")
	)
	flag.Parse()
	if *shard < 0 || *shards <= 0 || *shard >= *shards {
		log.Fatalf("invalid shard %d of %d", *shard, *shards)
	}

	cfg := corpus.DefaultConfig()
	cfg.NumDocs = *docs
	cfg.VocabSize = *vocab
	cfg.Seed = *seed
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := partition.NewBuilder(*parts, partition.RoundRobin, 0)
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	gen.GenerateFunc(func(d corpus.Document) {
		if i%*shards == *shard {
			b.AddCorpusDoc(d)
		}
		i++
	})
	idx := b.Finalize()

	node := cluster.NewNode(*name, idx, search.Options{TopK: *topK}, *parallel)
	node.SetDrainTimeout(*drain)
	var wrap func(http.Handler) http.Handler
	injecting := *faultLatProb > 0 || *faultErrProb > 0 || *faultBlackProb > 0
	if injecting {
		cfg := resilience.FaultConfig{
			Latency:       *faultLatency,
			LatencyProb:   *faultLatProb,
			ErrorProb:     *faultErrProb,
			BlackholeProb: *faultBlackProb,
			Seed:          *faultSeed,
		}
		wrap = func(h http.Handler) http.Handler { return resilience.NewFaultInjector(h, cfg) }
	}
	bound, err := node.StartWith(*addr, wrap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s serving %d docs in %d partitions on http://%s (shard %d/%d)\n",
		*name, idx.NumDocs(), idx.NumPartitions(), bound, *shard, *shards)
	if injecting {
		fmt.Printf("%s injecting faults: latency %v@%.0f%%, errors %.0f%%, blackholes %.0f%%\n",
			*name, *faultLatency, *faultLatProb*100, *faultErrProb*100, *faultBlackProb*100)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := node.Close(); err != nil {
		log.Fatal(err)
	}
}
