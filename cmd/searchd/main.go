// Command searchd serves an index over HTTP: one index-serving node of
// the benchmark's cluster tier, with intra-server partitioning.
//
// Usage:
//
//	searchd -addr :8081 -docs 20000 -partitions 8 -parallel
//
// searchd builds its slice of the synthetic corpus in memory on startup
// (deterministic for a given seed), so multi-node clusters are started by
// giving each node its shard via -shard/-shards. Replicated tiers start
// several nodes with the same -shard (identical slices) and distinct
// -replica labels, then list them as one replica group in the
// front-end's -topology flag:
//
//	searchd -addr :8081 -shard 0 -shards 2 -replica 0
//	searchd -addr :8082 -shard 0 -shards 2 -replica 1
//
// For resilience experiments a node can injure itself with the -fault-*
// flags (deterministic latency/error/blackhole injection in front of the
// handler), letting a live cluster be tested against stragglers and
// failures without external tooling:
//
//	searchd -addr :8082 -shard 1 -shards 2 -fault-latency 50ms -fault-latency-prob 0.05
//
// With -live the node serves a near-real-time mutable index instead of
// an immutable one: POST /docs and POST /delete mutate it while queries
// run, GET /metrics reports the latency histogram and live-index shape,
// and -live-ingest starts a background self-ingest loop (docs/sec) for
// observing query latency under write pressure:
//
//	searchd -addr :8081 -live -live-ingest 500
//
// With -blob-store the node is stateless: it builds nothing and holds
// no index files, serving instead from the manifest published to a blob
// store (a blobd URL or a shared directory). Segment metadata loads
// eagerly; posting blocks are fetched on demand through a block cache
// of -block-cache-mb megabytes, and a background poller swaps in new
// manifest generations as publishers commit them:
//
//	searchd -addr :8081 -blob-store http://127.0.0.1:9300 -block-cache-mb 64
//
// A live node can be the publisher feeding such searchers: with
// -blob-publish every flush and merge uploads the post-change segment
// set as a new generation (content-addressed, so unchanged segments are
// not re-uploaded):
//
//	searchd -addr :8081 -live -data-dir /data/n0 -blob-publish http://127.0.0.1:9300
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"websearchbench/internal/blob"
	"websearchbench/internal/cluster"
	"websearchbench/internal/cluster/resilience"
	"websearchbench/internal/corpus"
	"websearchbench/internal/durable"
	"websearchbench/internal/index"
	"websearchbench/internal/live"
	"websearchbench/internal/partition"
	"websearchbench/internal/search"
	"websearchbench/internal/search/exec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("searchd: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:8081", "listen address")
		name     = flag.String("name", "node-0", "node name")
		docs     = flag.Int("docs", 20000, "corpus documents (whole collection)")
		vocab    = flag.Int("vocab", 30000, "vocabulary size")
		seed     = flag.Int64("seed", 1, "corpus seed")
		parts    = flag.Int("partitions", 4, "intra-server partitions")
		parallel = flag.Bool("parallel", true, "search partitions with parallel workers")
		shard    = flag.Int("shard", 0, "this node's shard number")
		shards   = flag.Int("shards", 1, "total shards in the cluster")
		replica  = flag.Int("replica", 0, "this node's replica number within its shard (labeling only; replicas of a shard serve identical slices)")
		topK     = flag.Int("topk", 10, "results per query")
		drain    = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")

		execWorkers = flag.Int("exec-workers", 0, "bounded search executor workers shared by all queries (0 = GOMAXPROCS)")
		sharedTh    = flag.Bool("shared-threshold", true, "share the top-k pruning threshold across a query's partitions")

		// Live (near-real-time) serving.
		liveMode    = flag.Bool("live", false, "serve a mutable live index (enables POST /docs and /delete)")
		liveIngest  = flag.Float64("live-ingest", 0, "with -live: background self-ingest rate in docs/sec")
		liveMemDocs = flag.Int("live-memtable", 1024, "with -live: memtable flush threshold in docs")
		liveSegs    = flag.Int("live-max-segments", 8, "with -live: segment-count budget before merging")
		liveRefresh = flag.Int("live-refresh", 1, "with -live: publish a snapshot every N mutations")

		// Durability: with -data-dir the live index journals every
		// mutation to a write-ahead log, persists flushed segments with
		// checksums, and recovers its state across restarts and crashes.
		dataDir       = flag.String("data-dir", "", "with -live: durable storage directory (empty = in-memory only)")
		fsyncPolicy   = flag.String("fsync", "always", "with -data-dir: WAL fsync policy: always, interval or none")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "with -fsync interval: background sync period")

		// Disaggregated storage: serve from (or publish to) a blob store.
		blobStore    = flag.String("blob-store", "", "serve statelessly from this blob store (blobd URL or directory) instead of building an index")
		blockCacheMB = flag.Int("block-cache-mb", 64, "with -blob-store: posting-block cache budget in MiB")
		blobPoll     = flag.Duration("blob-poll", 2*time.Second, "with -blob-store: manifest poll interval")
		blobPublish  = flag.String("blob-publish", "", "with -live: publish every flush/merge to this blob store")
		blobRetain   = flag.Int("blob-retain", 3, "with -blob-publish: manifest generations retained by the post-publish sweep")

		// Fault injection, for resilience experiments against a live
		// node: searchd can make itself a straggler, an error source,
		// or a blackhole.
		faultLatency   = flag.Duration("fault-latency", 0, "injected latency per faulted request")
		faultLatProb   = flag.Float64("fault-latency-prob", 0, "probability of injecting latency")
		faultErrProb   = flag.Float64("fault-error-prob", 0, "probability of injecting a 503")
		faultBlackProb = flag.Float64("fault-blackhole-prob", 0, "probability of swallowing a request")
		faultSeed      = flag.Int64("fault-seed", 1, "fault-injection random seed")
	)
	flag.Parse()
	if *shard < 0 || *shards <= 0 || *shard >= *shards {
		log.Fatalf("invalid shard %d of %d", *shard, *shards)
	}
	if *liveMode && *blobStore != "" {
		log.Fatal("-live and -blob-store are mutually exclusive (a live node publishes with -blob-publish)")
	}
	if *blobPublish != "" && !*liveMode {
		log.Fatal("-blob-publish requires -live (offline builds publish via indexer -publish)")
	}
	if *replica < 0 {
		log.Fatalf("invalid replica %d", *replica)
	}
	if *replica > 0 && *name == "node-0" {
		// Default name: make replicas of a shard distinguishable in logs
		// and /stats without requiring an explicit -name per process.
		*name = fmt.Sprintf("node-%d-r%d", *shard, *replica)
	}
	if *execWorkers > 0 {
		exec.SetDefaultWorkers(*execWorkers)
	}

	cfg := corpus.DefaultConfig()
	cfg.NumDocs = *docs
	cfg.VocabSize = *vocab
	cfg.Seed = *seed
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var node *cluster.Node
	var serving string
	var store *durable.Store
	if *liveMode {
		lcfg := live.Config{
			MemtableMaxDocs: *liveMemDocs,
			MaxSegments:     *liveSegs,
			RefreshEvery:    *liveRefresh,
			Parallel:        *parallel,
		}
		var li *live.Index
		if *dataDir != "" {
			policy, err := durable.ParseFsyncPolicy(*fsyncPolicy)
			if err != nil {
				log.Fatal(err)
			}
			li, store, err = durable.OpenIndex(*dataDir, lcfg, durable.Options{
				Fsync:         policy,
				FsyncInterval: *fsyncInterval,
			})
			if err != nil {
				log.Fatal(err)
			}
			rs := store.RecoveryStats()
			fmt.Printf("%s recovered %s: generation %d, %d segments (%d quarantined), %d WAL records replayed (%d bytes, %d truncated) in %v\n",
				*name, *dataDir, rs.ManifestGeneration, rs.SegmentsLoaded, rs.SegmentsQuarantined,
				rs.ReplayedRecords, rs.ReplayedBytes, rs.TruncatedBytes, rs.RecoveryTime.Round(time.Millisecond))
		} else {
			lcfg.RefreshEvery = 1 << 30 // bulk seeding: publish once below
			li = live.NewIndex(lcfg)
		}
		defer li.Close()
		// Seed the corpus unless a previous run durably completed it. The
		// recovered doc count alone cannot gate this: a crash partway
		// through the initial seed leaves a durable index holding a
		// partial corpus, so completion is tracked by a marker file
		// written only after the seed is flushed. Re-seeding is
		// idempotent — existing keys update in place.
		seedMarker := ""
		needSeed := true
		if store != nil {
			seedMarker = filepath.Join(*dataDir, "SEEDED")
			if _, err := os.Stat(seedMarker); err == nil {
				needSeed = false
			} else if n := li.Stats().LiveDocs; n > 0 {
				expected := (*docs - *shard + *shards - 1) / *shards
				log.Printf("warning: recovered %d docs but no seed-complete marker (expected %d for shard %d/%d); re-seeding",
					n, expected, *shard, *shards)
			}
		}
		if needSeed {
			li.SetRefreshEvery(1 << 30) // bulk seeding: publish once below
			i := 0
			gen.GenerateFunc(func(d corpus.Document) {
				if i%*shards == *shard {
					if err := li.Add(d.URL, d.Title, d.Body, d.Quality); err != nil {
						log.Fatal(err)
					}
				}
				i++
			})
			if store != nil {
				// The seed is only complete once it is durable: flush it
				// (persisting segments and rotating the WAL), then drop
				// the marker atomically.
				if err := li.Flush(); err != nil {
					log.Fatal(err)
				}
				err := durable.WriteFileAtomic(durable.NewOSFS(), seedMarker, func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "seeded %d docs (shard %d/%d, seed %d)\n",
						li.Stats().LiveDocs, *shard, *shards, *seed)
					return err
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		li.SetRefreshEvery(*liveRefresh)
		li.Refresh()
		if *blobPublish != "" {
			pst, err := blob.Open(*blobPublish)
			if err != nil {
				log.Fatal(err)
			}
			pub := &blob.Publisher{Store: pst, CreatedBy: "live", Retain: *blobRetain}
			sink := live.Sink(blob.NewLiveSink(pub))
			if store != nil {
				sink = live.MultiSink{store, sink}
			}
			li.SetDurableSink(sink)
			// Make the current state visible to stateless searchers now:
			// flush captures any seeded memtable, and if that was a no-op
			// (recovered index, empty memtable) re-emit the segment set.
			if err := li.Flush(); err != nil {
				log.Fatal(err)
			}
			if _, ok, err := blob.LoadManifest(pst); err != nil {
				log.Fatal(err)
			} else if !ok {
				if err := li.PublishCommit(); err != nil {
					log.Fatal(err)
				}
			}
		}
		if *liveIngest > 0 {
			go selfIngest(li, cfg, *liveIngest)
		}
		node = cluster.NewLiveNode(*name, li, *topK)
		serving = fmt.Sprintf("%d live docs (memtable %d, max %d segments)",
			li.Stats().LiveDocs, *liveMemDocs, *liveSegs)
		if store != nil {
			serving += fmt.Sprintf(", durable in %s (fsync %s)", *dataDir, *fsyncPolicy)
		}
		if *blobPublish != "" {
			serving += fmt.Sprintf(", publishing to %s", *blobPublish)
		}
	} else if *blobStore != "" {
		st, err := blob.Open(*blobStore)
		if err != nil {
			log.Fatal(err)
		}
		cache := blob.NewBlockCache(int64(*blockCacheMB) << 20)
		src := blob.NewCachedSegmentSource(st, cache)
		makeSearcher := func(snap *blob.Snapshot) *partition.Searcher {
			segs := snap.Segments
			if len(segs) == 0 {
				// An empty manifest still needs a servable searcher.
				segs = []*index.Segment{index.NewBuilder().Finalize()}
			}
			idx := partition.FromSegments(segs)
			sr := partition.NewSearcher(idx, search.Options{TopK: *topK}, *parallel)
			if !*sharedTh {
				sr.SetSharedPruning(false)
			}
			for p, data := range snap.Tombs {
				if len(data) == 0 {
					continue
				}
				t, err := live.UnmarshalTombstones(data)
				if err != nil {
					log.Printf("warning: partition %d tombstones: %v (serving without deletes)", p, err)
					continue
				}
				if t.Count() > 0 {
					sr.SetPartitionDeleted(p, t.Has)
				}
			}
			return sr
		}
		// Block until a publisher has committed a first manifest.
		var snap *blob.Snapshot
		for logged := false; ; time.Sleep(500 * time.Millisecond) {
			s, ok, err := src.LoadSnapshot()
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				snap = s
				break
			}
			if !logged {
				log.Printf("waiting for a manifest in %s", *blobStore)
				logged = true
			}
		}
		node = cluster.NewNodeFromSearcher(*name, makeSearcher(snap), *topK)
		poller := &blob.Poller{
			Source:   src,
			Interval: *blobPoll,
			Logf:     log.Printf,
			OnSwap:   func(s *blob.Snapshot) { node.SetSearcher(makeSearcher(s)) },
		}
		poller.SetGeneration(snap.Manifest.Generation)
		node.SetBlobMetrics(func() *cluster.BlobMetrics {
			return &cluster.BlobMetrics{SourceStats: src.Stats(), Generation: poller.Generation()}
		})
		go poller.Run(context.Background())
		docs := 0
		for _, seg := range snap.Segments {
			docs += seg.NumDocs()
		}
		serving = fmt.Sprintf("generation %d from %s (%d segments, %d docs, %d MiB block cache)",
			snap.Manifest.Generation, *blobStore, len(snap.Segments), docs, *blockCacheMB)
	} else {
		b, err := partition.NewBuilder(*parts, partition.RoundRobin, 0)
		if err != nil {
			log.Fatal(err)
		}
		i := 0
		gen.GenerateFunc(func(d corpus.Document) {
			if i%*shards == *shard {
				b.AddCorpusDoc(d)
			}
			i++
		})
		idx := b.Finalize()
		node = cluster.NewNode(*name, idx, search.Options{TopK: *topK}, *parallel)
		if !*sharedTh {
			node.Searcher().SetSharedPruning(false)
		}
		serving = fmt.Sprintf("%d docs in %d partitions", idx.NumDocs(), idx.NumPartitions())
	}
	node.SetDrainTimeout(*drain)
	var wrap func(http.Handler) http.Handler
	injecting := *faultLatProb > 0 || *faultErrProb > 0 || *faultBlackProb > 0
	if injecting {
		cfg := resilience.FaultConfig{
			Latency:       *faultLatency,
			LatencyProb:   *faultLatProb,
			ErrorProb:     *faultErrProb,
			BlackholeProb: *faultBlackProb,
			Seed:          *faultSeed,
		}
		wrap = func(h http.Handler) http.Handler { return resilience.NewFaultInjector(h, cfg) }
	}
	bound, err := node.StartWith(*addr, wrap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s serving %s on http://%s (shard %d/%d, replica %d)\n",
		*name, serving, bound, *shard, *shards, *replica)
	if *liveMode && *liveIngest > 0 {
		fmt.Printf("%s self-ingesting %.0f docs/sec\n", *name, *liveIngest)
	}
	if injecting {
		fmt.Printf("%s injecting faults: latency %v@%.0f%%, errors %.0f%%, blackholes %.0f%%\n",
			*name, *faultLatency, *faultLatProb*100, *faultErrProb*100, *faultBlackProb*100)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := node.Close(); err != nil {
		log.Fatal(err)
	}
	if store != nil {
		// Graceful shutdown: flush the memtable (persisting it and
		// rotating the WAL down to empty) so the next startup replays
		// nothing. A crash skips this — that is what the WAL is for.
		if li := node.Live(); li != nil {
			if err := li.Flush(); err != nil {
				log.Printf("final flush: %v", err)
			}
		}
		if err := store.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// selfIngest re-ingests corpus documents into li at the given rate,
// cycling keys so every pass after the first is a stream of updates
// (tombstoning the prior versions and exercising merges). It runs until
// the process exits.
func selfIngest(li *live.Index, cfg corpus.Config, rate float64) {
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		return
	}
	var docs []corpus.Document
	gen.GenerateFunc(func(d corpus.Document) { docs = append(docs, d) })
	if len(docs) == 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; ; i++ {
		<-tick.C
		d := docs[i%len(docs)]
		li.Add(d.URL, d.Title, d.Body, d.Quality)
	}
}
