// Command frontend serves the scatter/gather tier in front of searchd
// nodes, with the resilience layer (deadlines, hedging, retries, circuit
// breakers) exposed as flags. GET /metrics reports the end-to-end
// search-latency histogram as JSON (count, mean, p50/p95/p99) plus
// per-shard replica-balancer state.
//
// Usage:
//
//	frontend -addr :8080 -nodes http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	  -deadline 2s -hedge -hedge-after 0 -retries 2
//
// For a replicated tier, -topology replaces -nodes: shards are separated
// by ';' and a shard's replicas by ','. -balance picks the replica
// selector (rr, p2c, peak-ewma, least-loaded). Live-index writes posted
// to the front-end (POST /docs, /delete) are consistent-hash routed to
// every replica of the key-owning shard:
//
//	frontend -addr :8080 \
//	  -topology "http://127.0.0.1:8081,http://127.0.0.1:8082;http://127.0.0.1:8083,http://127.0.0.1:8084" \
//	  -balance p2c -hedge
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"websearchbench/internal/cluster"
	"websearchbench/internal/cluster/balance"
	"websearchbench/internal/cluster/resilience"
)

// parseTopology splits a ';'-separated shard list of ','-separated
// replica URLs into replica groups.
func parseTopology(s string) ([][]string, error) {
	var groups [][]string
	for _, shard := range strings.Split(s, ";") {
		var group []string
		for _, u := range strings.Split(shard, ",") {
			if u = strings.TrimSpace(u); u != "" {
				group = append(group, u)
			}
		}
		if len(group) == 0 {
			return nil, fmt.Errorf("topology shard %d has no replicas", len(groups))
		}
		groups = append(groups, group)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("empty topology")
	}
	return groups, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("frontend: ")

	def := resilience.DefaultPolicy()
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		nodes    = flag.String("nodes", "http://127.0.0.1:8081", "comma-separated node base URLs (one single-replica shard each)")
		topology = flag.String("topology", "", "replicated layout: shards separated by ';', replicas by ',' (overrides -nodes)")
		balancer = flag.String("balance", balance.RoundRobin, "replica selector: rr, p2c, peak-ewma, least-loaded")
		topK     = flag.Int("topk", 10, "merged results per query")
		cache    = flag.Int("cache", 0, "result-cache capacity (0 disables)")

		deadline   = flag.Duration("deadline", def.Deadline, "per-query deadline (0 disables)")
		hedge      = flag.Bool("hedge", false, "hedge straggling node sub-requests")
		hedgeAfter = flag.Duration("hedge-after", 0, "fixed hedge delay (0 = adaptive per-node p95)")
		retries    = flag.Int("retries", def.MaxRetries, "max retries for transient node errors")
		budget     = flag.Float64("retry-budget", def.RetryBudgetRatio, "retry budget ratio (0 = unlimited)")
		brkThresh  = flag.Int("breaker-threshold", def.BreakerThreshold, "consecutive failures tripping a node's breaker (0 disables)")
		brkCool    = flag.Duration("breaker-cooldown", def.BreakerCooldown, "breaker open time before the half-open probe")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	spec := *topology
	if spec == "" {
		spec = strings.ReplaceAll(*nodes, ",", ";") // each node its own shard
	}
	groups, err := parseTopology(spec)
	if err != nil {
		log.Fatal(err)
	}
	fe, err := cluster.NewReplicatedFrontend(groups, *topK)
	if err != nil {
		log.Fatal(err)
	}
	if err := fe.SetBalancer(*balancer); err != nil {
		log.Fatal(err)
	}
	policy := def
	policy.Deadline = *deadline
	policy.HedgeEnabled = *hedge
	policy.HedgeAfter = *hedgeAfter
	policy.MaxRetries = *retries
	policy.RetryBudgetRatio = *budget
	policy.BreakerThreshold = *brkThresh
	policy.BreakerCooldown = *brkCool
	fe.SetPolicy(policy)
	fe.SetDrainTimeout(*drain)
	if *cache > 0 {
		fe.EnableCache(*cache)
	}
	bound, err := fe.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	replicas := 0
	for _, g := range groups {
		replicas += len(g)
	}
	fmt.Printf("frontend on http://%s scattering to %d shards / %d replicas, balance %s (deadline %v, hedge %v, retries %d)\n",
		bound, len(groups), replicas, *balancer, *deadline, *hedge, *retries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := fe.ResilienceStats()
	fmt.Printf("served %d queries: %d hedges (%.2f%% of sub-requests), %d retries, %d writes\n",
		st.Queries, st.Hedges, st.HedgeRate*100, st.Retries, st.Writes)
	i := 0
	for s, g := range groups {
		for r, u := range g {
			n := st.Nodes[i]
			b := st.Balance[s].Replicas[r]
			fmt.Printf("  shard %d %s: %d reqs, %d picks, %d failures, breaker %s, p95 %v\n",
				s, u, n.Requests, b.Picks, n.Failures, n.State, n.P95)
			i++
		}
	}
	if err := fe.Close(); err != nil {
		log.Fatal(err)
	}
}
