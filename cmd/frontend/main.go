// Command frontend serves the scatter/gather tier in front of searchd
// nodes.
//
// Usage:
//
//	frontend -addr :8080 -nodes http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"websearchbench/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frontend: ")

	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		nodes = flag.String("nodes", "http://127.0.0.1:8081", "comma-separated node base URLs")
		topK  = flag.Int("topk", 10, "merged results per query")
	)
	flag.Parse()

	urls := strings.Split(*nodes, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	fe, err := cluster.NewFrontend(urls, *topK)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := fe.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frontend on http://%s scattering to %d nodes\n", bound, len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := fe.Close(); err != nil {
		log.Fatal(err)
	}
}
