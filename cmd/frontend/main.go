// Command frontend serves the scatter/gather tier in front of searchd
// nodes, with the resilience layer (deadlines, hedging, retries, circuit
// breakers) exposed as flags. GET /metrics reports the end-to-end
// search-latency histogram as JSON (count, mean, p50/p95/p99).
//
// Usage:
//
//	frontend -addr :8080 -nodes http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	  -deadline 2s -hedge -hedge-after 0 -retries 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"websearchbench/internal/cluster"
	"websearchbench/internal/cluster/resilience"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frontend: ")

	def := resilience.DefaultPolicy()
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		nodes = flag.String("nodes", "http://127.0.0.1:8081", "comma-separated node base URLs")
		topK  = flag.Int("topk", 10, "merged results per query")
		cache = flag.Int("cache", 0, "result-cache capacity (0 disables)")

		deadline   = flag.Duration("deadline", def.Deadline, "per-query deadline (0 disables)")
		hedge      = flag.Bool("hedge", false, "hedge straggling node sub-requests")
		hedgeAfter = flag.Duration("hedge-after", 0, "fixed hedge delay (0 = adaptive per-node p95)")
		retries    = flag.Int("retries", def.MaxRetries, "max retries for transient node errors")
		budget     = flag.Float64("retry-budget", def.RetryBudgetRatio, "retry budget ratio (0 = unlimited)")
		brkThresh  = flag.Int("breaker-threshold", def.BreakerThreshold, "consecutive failures tripping a node's breaker (0 disables)")
		brkCool    = flag.Duration("breaker-cooldown", def.BreakerCooldown, "breaker open time before the half-open probe")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	urls := strings.Split(*nodes, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	fe, err := cluster.NewFrontend(urls, *topK)
	if err != nil {
		log.Fatal(err)
	}
	policy := def
	policy.Deadline = *deadline
	policy.HedgeEnabled = *hedge
	policy.HedgeAfter = *hedgeAfter
	policy.MaxRetries = *retries
	policy.RetryBudgetRatio = *budget
	policy.BreakerThreshold = *brkThresh
	policy.BreakerCooldown = *brkCool
	fe.SetPolicy(policy)
	fe.SetDrainTimeout(*drain)
	if *cache > 0 {
		fe.EnableCache(*cache)
	}
	bound, err := fe.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frontend on http://%s scattering to %d nodes (deadline %v, hedge %v, retries %d)\n",
		bound, len(urls), *deadline, *hedge, *retries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := fe.ResilienceStats()
	fmt.Printf("served %d queries: %d hedges (%.2f%% of sub-requests), %d retries\n",
		st.Queries, st.Hedges, st.HedgeRate*100, st.Retries)
	for i, n := range st.Nodes {
		fmt.Printf("  %s: %d reqs, %d failures, breaker %s, p95 %v\n",
			urls[i], n.Requests, n.Failures, n.State, n.P95)
	}
	if err := fe.Close(); err != nil {
		log.Fatal(err)
	}
}
