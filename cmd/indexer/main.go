// Command indexer generates the synthetic web corpus and builds an index
// segment file, optionally alongside a query trace.
//
// Usage:
//
//	indexer -docs 20000 -vocab 30000 -out index.seg -trace queries.txt
//
// With -live the corpus is streamed through the near-real-time ingest
// path (memtable, flushes, tiered merges) and compacted to a single
// segment before serialization — exercising exactly the machinery a
// live searchd node runs, and proving the two paths produce equivalent
// on-disk indexes. Live segments use packed compression and carry no
// positions.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"websearchbench/internal/corpus"
	"websearchbench/internal/durable"
	"websearchbench/internal/index"
	"websearchbench/internal/live"
	"websearchbench/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexer: ")

	var (
		docs     = flag.Int("docs", 20000, "number of documents to generate")
		vocab    = flag.Int("vocab", 30000, "vocabulary size")
		meanLen  = flag.Int("meanlen", 250, "mean document length in terms")
		seed     = flag.Int64("seed", 1, "corpus seed")
		encoding = flag.String("encoding", "packed", "posting-list encoding: packed, varint or raw")
		raw      = flag.Bool("raw", false, "use raw (uncompressed) postings (shorthand for -encoding raw)")
		liveMode = flag.Bool("live", false, "build through the live-ingest path, then compact")
		out      = flag.String("out", "index.seg", "output segment file")
		trace    = flag.String("trace", "", "also write a query trace to this file")
		timed    = flag.String("timed", "", "also write a timed (replayable) trace to this file")
		rate     = flag.Float64("rate", 100, "arrival rate for the timed trace (qps)")
		queries  = flag.Int("queries", 10000, "queries to write to the trace")
	)
	flag.Parse()

	cfg := corpus.DefaultConfig()
	cfg.NumDocs = *docs
	cfg.VocabSize = *vocab
	cfg.MeanBodyTerms = *meanLen
	cfg.Seed = *seed

	if *raw {
		*encoding = "raw"
	}
	var opts []index.BuilderOption
	switch *encoding {
	case "packed": // the builder default
	case "varint":
		opts = append(opts, index.WithCompression(index.CompressionVarint))
	case "raw":
		opts = append(opts, index.WithCompression(index.CompressionRaw))
	default:
		log.Fatalf("unknown -encoding %q (want packed, varint or raw)", *encoding)
	}
	var seg *index.Segment
	if *liveMode {
		if *encoding != "packed" {
			log.Fatalf("-live only supports the packed encoding (got %q)", *encoding)
		}
		gen, err := corpus.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		li := live.NewIndex(live.Config{RefreshEvery: 1 << 30})
		gen.GenerateFunc(func(d corpus.Document) {
			if err := li.Add(d.URL, d.Title, d.Body, d.Quality); err != nil {
				log.Fatal(err)
			}
		})
		if err := li.Compact(); err != nil {
			log.Fatal(err)
		}
		seg = li.Segment()
		li.Close()
		if seg == nil {
			log.Fatal("live compaction did not converge to a single segment")
		}
	} else {
		var err error
		seg, err = index.BuildFromCorpus(cfg, opts...)
		if err != nil {
			log.Fatal(err)
		}
	}
	// Write-temp-fsync-rename so a crashed or interrupted indexer never
	// leaves a half-written file under the output name.
	var n int64
	err := durable.WriteFileAtomic(durable.NewOSFS(), *out, func(w io.Writer) error {
		var werr error
		n, werr = seg.WriteTo(w)
		return werr
	})
	if err != nil {
		log.Fatal(err)
	}
	st := seg.ComputeStats(5)
	fmt.Printf("wrote %s: %d docs, %d terms, %d postings, %d bytes (%s, compression %.2fx)\n",
		*out, st.NumDocs, st.NumTerms, st.TotalPostings, n, st.Encoding, st.CompressionRatio)

	if *trace != "" || *timed != "" {
		gen, err := workload.NewGenerator(workload.DefaultConfig(), corpus.NewVocabulary(*vocab))
		if err != nil {
			log.Fatal(err)
		}
		if *trace != "" {
			tf, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			if err := workload.WriteTrace(tf, gen.Generate(*queries)); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s: %d queries\n", *trace, *queries)
		}
		if *timed != "" {
			tt, err := gen.GenerateTimed(*queries, *rate, nil)
			if err != nil {
				log.Fatal(err)
			}
			tf, err := os.Create(*timed)
			if err != nil {
				log.Fatal(err)
			}
			if err := workload.WriteTimedTrace(tf, tt); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s: %d timed queries at %.0f qps\n", *timed, *queries, *rate)
		}
	}
}
