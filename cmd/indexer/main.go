// Command indexer generates the synthetic web corpus and builds an index
// segment file, optionally alongside a query trace.
//
// Usage:
//
//	indexer -docs 20000 -vocab 30000 -out index.seg -trace queries.txt
//
// Builds run through the parallel indexing pipeline: -workers analyze/
// build workers (default all CPUs) consume the streamed corpus, cutting
// segments every -segment-docs documents while a background tier merges
// them, and the result is compacted to a single segment. Output is
// byte-identical for any worker count; -workers 1 with the default
// -segment-docs is the plain single-builder path. Progress (docs/s,
// MB/s) is reported every few seconds on stderr.
//
// With -live the corpus is streamed through the near-real-time ingest
// path (memtable, flushes, tiered merges) and compacted to a single
// segment before serialization — exercising exactly the machinery a
// live searchd node runs, and proving the two paths produce equivalent
// on-disk indexes. Live segments use packed compression and carry no
// positions.
//
// With -publish the finished segment is also uploaded to a blob store
// (a blobd URL or a shared directory) and committed as a manifest
// generation, ready for stateless searchd -blob-store nodes:
//
//	indexer -docs 20000 -out index.seg -publish http://127.0.0.1:9300
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"websearchbench/internal/blob"
	"websearchbench/internal/corpus"
	"websearchbench/internal/durable"
	"websearchbench/internal/index"
	"websearchbench/internal/index/pipeline"
	"websearchbench/internal/live"
	"websearchbench/internal/workload"
)

// startProgress launches a ticker that reports build progress (docs/s,
// MB/s, elapsed, merge backlog) on stderr until the returned stop
// function is called. A zero interval disables reporting.
func startProgress(p *pipeline.Pipeline, every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		var lastDocs, lastBytes int64
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			st := p.Stats()
			log.Printf("progress: %d docs (%.0f docs/s, %.1f MB/s), %d segments cut, %d merges, backlog %d, %.1fs elapsed",
				st.DocsIndexed,
				float64(st.DocsIndexed-lastDocs)/every.Seconds(),
				float64(st.BytesIndexed-lastBytes)/every.Seconds()/(1<<20),
				st.SegmentsCut, st.Merges, st.MergeBacklog, st.Elapsed.Seconds())
			lastDocs, lastBytes = st.DocsIndexed, st.BytesIndexed
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexer: ")

	var (
		docs     = flag.Int("docs", 20000, "number of documents to generate")
		vocab    = flag.Int("vocab", 30000, "vocabulary size")
		meanLen  = flag.Int("meanlen", 250, "mean document length in terms")
		seed     = flag.Int64("seed", 1, "corpus seed")
		encoding = flag.String("encoding", "packed", "posting-list encoding: packed, varint or raw")
		raw      = flag.Bool("raw", false, "use raw (uncompressed) postings (shorthand for -encoding raw)")
		liveMode = flag.Bool("live", false, "build through the live-ingest path, then compact")
		out      = flag.String("out", "index.seg", "output segment file")
		publish  = flag.String("publish", "", "also publish the segment to this blob store (blobd URL or directory)")
		trace    = flag.String("trace", "", "also write a query trace to this file")
		timed    = flag.String("timed", "", "also write a timed (replayable) trace to this file")
		rate     = flag.Float64("rate", 100, "arrival rate for the timed trace (qps)")
		queries  = flag.Int("queries", 10000, "queries to write to the trace")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel analyze/build workers (1 = serial single-builder path)")
		segDocs  = flag.Int("segment-docs", 0, "documents per intermediate segment (0 = auto; ignored with -workers 1)")
		progress = flag.Duration("progress", 3*time.Second, "progress report interval (0 disables)")
	)
	flag.Parse()

	cfg := corpus.DefaultConfig()
	cfg.NumDocs = *docs
	cfg.VocabSize = *vocab
	cfg.MeanBodyTerms = *meanLen
	cfg.Seed = *seed

	if *raw {
		*encoding = "raw"
	}
	var opts []index.BuilderOption
	switch *encoding {
	case "packed": // the builder default
	case "varint":
		opts = append(opts, index.WithCompression(index.CompressionVarint))
	case "raw":
		opts = append(opts, index.WithCompression(index.CompressionRaw))
	default:
		log.Fatalf("unknown -encoding %q (want packed, varint or raw)", *encoding)
	}
	var seg *index.Segment
	if *liveMode {
		if *encoding != "packed" {
			log.Fatalf("-live only supports the packed encoding (got %q)", *encoding)
		}
		gen, err := corpus.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		li := live.NewIndex(live.Config{RefreshEvery: 1 << 30})
		gen.GenerateFunc(func(d corpus.Document) {
			if err := li.Add(d.URL, d.Title, d.Body, d.Quality); err != nil {
				log.Fatal(err)
			}
		})
		if err := li.Compact(); err != nil {
			log.Fatal(err)
		}
		seg = li.Segment()
		li.Close()
		if seg == nil {
			log.Fatal("live compaction did not converge to a single segment")
		}
	} else {
		gen, err := corpus.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		p := pipeline.New(pipeline.Config{
			Workers:        *workers,
			SegmentDocs:    *segDocs,
			Compact:        true,
			BuilderOptions: opts,
		})
		stopProgress := startProgress(p, *progress)
		// Stream generated documents through a bounded channel: generation
		// runs concurrently with indexing and blocks when the workers fall
		// behind (backpressure), instead of materializing the corpus.
		ch := make(chan pipeline.Doc, 4*p.Config().Workers)
		go func() {
			defer close(ch)
			gen.GenerateFunc(func(d corpus.Document) {
				ch <- pipeline.Doc{Title: d.Title, Body: d.Body, URL: d.URL, Quality: d.Quality}
			})
		}()
		res, err := p.Run(pipeline.FromChan(ch))
		stopProgress()
		if err != nil {
			log.Fatal(err)
		}
		seg = res.Segments[0]
		st := p.Stats()
		log.Printf("built %d docs in %.2fs (%.0f docs/s, %.1f MB/s): %d segments cut, %d merges, first searchable after %.2fs",
			res.Docs, res.Elapsed.Seconds(),
			float64(res.Docs)/res.Elapsed.Seconds(),
			float64(res.Bytes)/res.Elapsed.Seconds()/(1<<20),
			st.SegmentsCut, st.Merges, res.TimeToFirstSegment.Seconds())
	}
	// Write-temp-fsync-rename so a crashed or interrupted indexer never
	// leaves a half-written file under the output name.
	var n int64
	err := durable.WriteFileAtomic(durable.NewOSFS(), *out, func(w io.Writer) error {
		var werr error
		n, werr = seg.WriteTo(w)
		return werr
	})
	if err != nil {
		log.Fatal(err)
	}
	st := seg.ComputeStats(5)
	fmt.Printf("wrote %s: %d docs, %d terms, %d postings, %d bytes (%s, compression %.2fx)\n",
		*out, st.NumDocs, st.NumTerms, st.TotalPostings, n, st.Encoding, st.CompressionRatio)

	if *publish != "" {
		bst, err := blob.Open(*publish)
		if err != nil {
			log.Fatal(err)
		}
		pub := &blob.Publisher{Store: bst, CreatedBy: "indexer", Retain: 3}
		m, err := pub.Publish([]blob.PubSegment{{ID: 1, Seg: seg}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published generation %d to %s (%d segment blobs)\n",
			m.Generation, *publish, len(m.Segments))
	}

	if *trace != "" || *timed != "" {
		gen, err := workload.NewGenerator(workload.DefaultConfig(), corpus.NewVocabulary(*vocab))
		if err != nil {
			log.Fatal(err)
		}
		if *trace != "" {
			tf, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			if err := workload.WriteTrace(tf, gen.Generate(*queries)); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s: %d queries\n", *trace, *queries)
		}
		if *timed != "" {
			tt, err := gen.GenerateTimed(*queries, *rate, nil)
			if err != nil {
				log.Fatal(err)
			}
			tf, err := os.Create(*timed)
			if err != nil {
				log.Fatal(err)
			}
			if err := workload.WriteTimedTrace(tf, tt); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s: %d timed queries at %.0f qps\n", *timed, *queries, *rate)
		}
	}
}
