// Command characterize inspects a serialized index segment (built by
// cmd/indexer): it prints the index-anatomy table and, given a query
// trace, the workload characterization and per-phase service-time
// breakdown — the offline counterpart of experiments E1–E4.
//
// Usage:
//
//	characterize -index index.seg
//	characterize -index index.seg -trace queries.txt
//	characterize -index index.seg -term websearch
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"websearchbench/internal/index"
	"websearchbench/internal/profilephase"
	"websearchbench/internal/search"
	"websearchbench/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	var (
		indexPath = flag.String("index", "index.seg", "segment file to inspect")
		tracePath = flag.String("trace", "", "query trace to characterize against the index")
		term      = flag.String("term", "", "print one term's dictionary entry and exit")
		topN      = flag.Int("top", 10, "most frequent terms to list")
	)
	flag.Parse()

	f, err := os.Open(*indexPath)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := index.ReadSegment(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading %s: %v", *indexPath, err)
	}

	if *term != "" {
		lookupTerm(seg, *term)
		return
	}

	printStats(seg, *topN)
	if *tracePath != "" {
		characterizeTrace(seg, *tracePath)
	}
}

func lookupTerm(seg *index.Segment, term string) {
	ti, ok := seg.Term(term)
	if !ok {
		fmt.Printf("term %q: not in dictionary\n", term)
		return
	}
	fmt.Printf("term %q: df=%d cf=%d idf=%.4f maxScore=%.4f\n",
		term, ti.DocFreq, ti.CollFreq, seg.IDF(term), ti.MaxScore)
	it, _ := seg.Postings(term)
	n := 0
	for it.Next() && n < 10 {
		doc := seg.Doc(it.Doc())
		fmt.Printf("  doc %d (tf=%d): %s\n", it.Doc(), it.Freq(), doc.URL)
		n++
	}
	if int32(n) < ti.DocFreq {
		fmt.Printf("  ... and %d more documents\n", ti.DocFreq-int32(n))
	}
}

func printStats(seg *index.Segment, topN int) {
	st := seg.ComputeStats(topN)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "documents\t%d\n", st.NumDocs)
	fmt.Fprintf(w, "distinct terms\t%d\n", st.NumTerms)
	fmt.Fprintf(w, "postings\t%d\n", st.TotalPostings)
	fmt.Fprintf(w, "term occurrences\t%d\n", st.TotalTermOccs)
	fmt.Fprintf(w, "avg doc length\t%.1f terms\n", st.AvgDocLen)
	fmt.Fprintf(w, "compression\t%s (%.2fx vs raw)\n", st.Encoding, st.CompressionRatio)
	fmt.Fprintf(w, "positional\t%v\n", seg.HasPositions())
	fmt.Fprintf(w, "postings bytes\t%d\n", st.PostingsBytes)
	fmt.Fprintf(w, "doc store bytes\t%d\n", st.StoredBytes)
	w.Flush()
	if topN > 0 {
		fmt.Println("top terms:")
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, tc := range st.TopTerms {
			fmt.Fprintf(w, "  %s\t%d\n", tc.Term, tc.Count)
		}
		w.Flush()
	}
}

func characterizeTrace(seg *index.Segment, path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading trace %s: %v", path, err)
	}
	if len(queries) == 0 {
		log.Fatal("empty trace")
	}

	ch := workload.Characterize(queries)
	fmt.Printf("\ntrace: %d queries, %d unique, mean %.2f terms, top-10 share %.1f%%\n",
		ch.Queries, ch.UniqueQueries, ch.MeanLen, ch.TopShare*100)

	searcher := search.NewSearcher(seg, search.DefaultOptions())
	var breakdown profilephase.Breakdown
	var anatomy profilephase.Anatomy
	matched := 0
	for _, q := range queries {
		start := time.Now()
		res := searcher.ParseAndSearch(q.Text, q.Mode)
		breakdown.Add(res.Phases)
		anatomy.Add(profilephase.Sample{
			Terms:    len(searcher.Options().Analyzer.AnalyzeQuery(q.Text)),
			Postings: res.PostingsScanned,
			Matches:  res.Matches,
			Service:  time.Since(start),
		})
		if len(res.Hits) > 0 {
			matched++
		}
	}
	fmt.Printf("match rate: %.1f%%\n", 100*float64(matched)/float64(len(queries)))

	fmt.Println("\nper-phase breakdown:")
	for _, s := range breakdown.Shares() {
		fmt.Printf("  %s\n", s)
	}
	fmt.Println("\nservice time by postings scanned:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, b := range anatomy.ByPostings(6) {
		fmt.Fprintf(w, "  %s\tn=%d\tmean=%v\tp99=%v\n", b.Label, b.Count, b.Mean, b.P99)
	}
	w.Flush()
	if fit, err := anatomy.CorrelatePostings(); err == nil {
		fmt.Printf("latency vs postings: R2=%.3f slope=%.1fns/posting\n", fit.R2, fit.Slope*1e9)
	}
}
